"""Recursive-bisection buffered clock tree synthesis.

Flip-flop clock pins are recursively partitioned by alternating
median x/y splits until each leaf group fits the buffer fanout limit;
a buffer is inserted at each group's centroid, and groups pair up
level by level until a single root buffer hangs off the clock port.

The synthesizer edits the netlist (real buffer instances, re-wired CK
pins), places the new buffers, and reports per-flip-flop clock
arrival times (buffer LUT delays plus Elmore-style wire delays) that
STA consumes as launch/capture skew.

Clock buffers default to the high-Vth variant: the clock tree must not
leak in standby and its own delay is absorbed by the skew balance.
"""

from __future__ import annotations

import dataclasses
import statistics

from repro.errors import FlowError
from repro.liberty.library import Library
from repro.netlist.core import Instance, Netlist, PinDirection
from repro.placement.placer import Placement, place_incremental


@dataclasses.dataclass
class CtsResult:
    """Outcome of clock tree synthesis."""

    clock_arrivals: dict[str, float]     # per flip-flop instance
    buffer_instances: list[str]
    levels: int
    skew: float

    @property
    def buffer_count(self) -> int:
        return len(self.buffer_instances)


@dataclasses.dataclass
class _Group:
    """One cluster of clock sinks during bottom-up merging."""

    x: float
    y: float
    # (instance name, pin name) sinks for leaf groups; child buffer
    # instances for upper levels.
    members: list[tuple[str, str]]
    arrival_offset: float = 0.0   # delay accumulated below this group


class ClockTreeSynthesizer:
    """Builds a buffered clock tree for one placed netlist."""

    def __init__(self, netlist: Netlist, library: Library,
                 placement: Placement, clock_port: str = "CLK",
                 buffer_cell: str = "BUF_X4_HVT",
                 fanout_limit: int = 8):
        if fanout_limit < 2:
            raise FlowError("CTS fanout limit must be at least 2")
        self.netlist = netlist
        self.library = library
        self.placement = placement
        self.clock_port = clock_port
        self.buffer_cell = buffer_cell
        self.fanout_limit = fanout_limit
        self.tech = library.tech

    def clock_sinks(self) -> list[tuple[Instance, str]]:
        """(instance, pin name) for every clock pin on the clock net."""
        port = self.netlist.ports.get(self.clock_port)
        if port is None or port.net is None:
            return []
        return [(pin.instance, pin.name) for pin in list(port.net.sinks)]

    def run(self) -> CtsResult:
        sinks = self.clock_sinks()
        if not sinks:
            return CtsResult({}, [], 0, 0.0)
        if self.buffer_cell not in self.library:
            raise FlowError(f"CTS buffer cell {self.buffer_cell!r} missing "
                            f"from library")

        # Leaf grouping by recursive median bisection.
        entries = [(inst.name, pin_name,
                    *self.placement.location(inst.name))
                   for inst, pin_name in sinks]
        leaf_groups = self._bisect(entries)

        buffers: list[str] = []
        arrivals: dict[str, float] = {}
        level = 0
        # Build leaf buffers.
        groups: list[_Group] = []
        for members in leaf_groups:
            group = self._make_group(members)
            buffer_name = self._insert_buffer(group, level)
            buffers.append(buffer_name)
            groups.append(_Group(
                x=group.x, y=group.y,
                members=[(buffer_name, "A")],
                arrival_offset=group.arrival_offset))
        level += 1
        # Merge upward until one group remains.
        while len(groups) > 1:
            groups.sort(key=lambda g: (g.y, g.x))
            merged: list[_Group] = []
            for i in range(0, len(groups), self.fanout_limit):
                chunk = groups[i:i + self.fanout_limit]
                members = [m for g in chunk for m in g.members]
                offset = max(g.arrival_offset for g in chunk)
                group = _Group(
                    x=statistics.fmean(g.x for g in chunk),
                    y=statistics.fmean(g.y for g in chunk),
                    members=members, arrival_offset=offset)
                buffer_name = self._insert_buffer(group, level)
                buffers.append(buffer_name)
                merged.append(_Group(group.x, group.y,
                                     [(buffer_name, "A")],
                                     group.arrival_offset))
            groups = merged
            level += 1

        # Compute per-FF arrival: walk the buffer chain delays.
        arrivals = self._compute_arrivals(sinks)
        skew = (max(arrivals.values()) - min(arrivals.values())
                if arrivals else 0.0)
        return CtsResult(arrivals, buffers, level, skew)

    # --- construction -----------------------------------------------------------

    def _bisect(self, entries: list[tuple]) -> list[list[tuple]]:
        """Recursively split (name, pin, x, y) entries by median."""
        if len(entries) <= self.fanout_limit:
            return [entries]
        xs = [e[2] for e in entries]
        ys = [e[3] for e in entries]
        split_on_x = (max(xs) - min(xs)) >= (max(ys) - min(ys))
        key = (lambda e: e[2]) if split_on_x else (lambda e: e[3])
        ordered = sorted(entries, key=key)
        mid = len(ordered) // 2
        return self._bisect(ordered[:mid]) + self._bisect(ordered[mid:])

    def _make_group(self, members: list[tuple]) -> _Group:
        return _Group(
            x=statistics.fmean(e[2] for e in members),
            y=statistics.fmean(e[3] for e in members),
            members=[(e[0], e[1]) for e in members])

    def _insert_buffer(self, group: _Group, level: int) -> str:
        """Insert one buffer driving the group's member pins."""
        name = self.netlist.unique_name(f"ctsbuf_l{level}")
        net_name = self.netlist.unique_name(f"clk_l{level}")
        buffer_inst = self.netlist.add_instance(name, self.buffer_cell)
        out_net = self.netlist.get_or_create_net(net_name)
        self.netlist.connect(buffer_inst, "Z", out_net, PinDirection.OUTPUT)
        # Input initially hangs off the clock root; upper levels re-wire it.
        clock_net = self.netlist.ports[self.clock_port].net
        self.netlist.connect(buffer_inst, "A", clock_net, PinDirection.INPUT)
        for inst_name, pin_name in group.members:
            inst = self.netlist.instance(inst_name)
            pin = inst.pin(pin_name)
            self.netlist.disconnect(pin)
            self.netlist.connect(inst, pin_name, out_net, pin.direction)
        place_incremental(self.placement, self.netlist, self.library,
                          name, (group.x, group.y))
        return name

    # --- analysis -------------------------------------------------------------------

    def _compute_arrivals(self, sinks) -> dict[str, float]:
        """Per-flip-flop clock arrival via the buffer chain."""
        arrivals: dict[str, float] = {}
        cache: dict[str, float] = {}
        for inst, pin_name in sinks:
            arrivals[inst.name] = self._arrival_at(inst, pin_name, cache)
        return arrivals

    def _arrival_at(self, inst: Instance, pin_name: str,
                    cache: dict[str, float]) -> float:
        pin = inst.pin(pin_name)
        net = pin.net
        if net is None or net.driver is None:
            return 0.0  # directly on the clock port
        driver = net.driver.instance
        key = driver.name
        if key in cache:
            base = cache[key]
        else:
            base = self._arrival_at(driver, "A", cache) \
                + self._buffer_delay(driver)
            cache[key] = base
        return base + self._wire_delay(driver, inst)

    def _buffer_delay(self, buffer_inst: Instance) -> float:
        cell = self.library.cell(buffer_inst.cell_name)
        arc = cell.single_output().arc_from("A")
        if arc is None:
            return 0.0
        out_net = buffer_inst.pin("Z").net
        load = 0.0
        if out_net is not None:
            for sink in out_net.sinks:
                sink_cell = self.library.cells.get(sink.instance.cell_name)
                if sink_cell is not None and sink.name in sink_cell.pins:
                    load += sink_cell.pins[sink.name].capacitance
        rise, fall = arc.delay(0.05, load)
        return max(rise, fall)

    def _wire_delay(self, source: Instance, target: Instance) -> float:
        sx, sy = self.placement.location(source.name)
        tx, ty = self.placement.location(target.name)
        length = abs(sx - tx) + abs(sy - ty)
        res = length * self.tech.wire_res_per_um
        cap = length * self.tech.wire_cap_per_um
        return 0.69 * res * cap * 0.5
