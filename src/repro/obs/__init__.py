"""``repro.obs``: zero-dependency observability for the whole flow.

Three legs, one package:

* :mod:`repro.obs.spans` — hierarchical wall-clock spans (disabled by
  default; no-op fast path benchmarked < 2 % on the STA bench);
* :mod:`repro.obs.metrics` — the process-wide registry of counters,
  gauges, histograms, and polled cache-stats sources;
* :mod:`repro.obs.export` — Chrome trace-event JSON plus the
  schema-stamped ``TraceResult`` / ``MetricsSnapshot`` wire shapes;
* :mod:`repro.obs.logconf` — the stdlib ``repro`` logger hierarchy
  (NullHandler by default, ``--log-level`` / ``REPRO_LOG_LEVEL``).
"""

from repro.obs.export import (
    MetricsSnapshot,
    SpanNode,
    TraceResult,
    chrome_trace_events,
    write_chrome_trace,
)
from repro.obs.logconf import configure_logging, get_logger
from repro.obs.metrics import (
    REGISTRY,
    MetricsRegistry,
    install_builtin_sources,
)
from repro.obs.spans import (
    SpanRecord,
    adopt,
    disable,
    dropped_roots,
    enable,
    is_enabled,
    reset,
    span,
    take_records,
    timed_span,
)

__all__ = [
    "MetricsRegistry",
    "MetricsSnapshot",
    "REGISTRY",
    "SpanNode",
    "SpanRecord",
    "TraceResult",
    "adopt",
    "chrome_trace_events",
    "configure_logging",
    "disable",
    "dropped_roots",
    "enable",
    "get_logger",
    "install_builtin_sources",
    "is_enabled",
    "reset",
    "span",
    "take_records",
    "timed_span",
    "write_chrome_trace",
]
