"""The ``repro`` logging hierarchy.

Library rule: every module logs through ``get_logger(__name__)``-style
children of the root ``repro`` logger, which carries a NullHandler so
importing the library never prints.  Applications (the CLI, the smoke
scripts) opt in with :func:`configure_logging`, resolved in order:

1. an explicit level argument (``repro-smt --log-level debug``);
2. the ``REPRO_LOG_LEVEL`` environment variable;
3. neither → leave logging untouched (NullHandler only).
"""

from __future__ import annotations

import logging
import os
import sys

ENV_VAR = "REPRO_LOG_LEVEL"

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"

#: Marker so repeated configure_logging calls replace, not stack,
#: the handler (the restart leg of the smoke test reconfigures).
_HANDLER_NAME = "repro-obs-stream"

root_logger = logging.getLogger("repro")
if not any(isinstance(h, logging.NullHandler)
           for h in root_logger.handlers):
    root_logger.addHandler(logging.NullHandler())


def get_logger(name: str = "repro") -> logging.Logger:
    """A logger under the ``repro`` hierarchy.

    Accepts either a dotted module path (``repro.api.service`` passes
    through) or a bare suffix (``"service"`` → ``repro.service``).
    """
    if name == "repro" or name.startswith("repro."):
        return logging.getLogger(name)
    return logging.getLogger(f"repro.{name}")


def resolve_level(level: str | int | None) -> int | None:
    """Map a level name/number (or the env var) to a logging level."""
    if level is None:
        level = os.environ.get(ENV_VAR) or None
    if level is None:
        return None
    if isinstance(level, int):
        return level
    text = str(level).strip().upper()
    if text.isdigit():
        return int(text)
    resolved = logging.getLevelName(text)
    if isinstance(resolved, int):
        return resolved
    raise ValueError(f"unknown log level: {level!r}")


def configure_logging(level: str | int | None = None,
                      stream=None) -> bool:
    """Attach a stream handler to the ``repro`` logger.

    Returns True when logging was configured, False when no level was
    requested (argument and env var both unset).  Idempotent: the
    previous obs-owned handler is replaced, never stacked.
    """
    resolved = resolve_level(level)
    if resolved is None:
        return False
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.name = _HANDLER_NAME
    handler.setFormatter(logging.Formatter(_FORMAT))
    for old in list(root_logger.handlers):
        if old.name == _HANDLER_NAME:
            root_logger.removeHandler(old)
    root_logger.addHandler(handler)
    root_logger.setLevel(resolved)
    return True
