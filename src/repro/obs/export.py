"""Exporters: Chrome trace-event JSON and schema-stamped snapshots.

Two consumers, two formats:

* **Chrome trace-event JSON** (:func:`write_chrome_trace`): the file
  ``repro-smt flow --trace out.json`` writes, loadable directly in
  Perfetto / ``chrome://tracing``.  Complete events (``"ph": "X"``)
  with microsecond timestamps; nesting is implied by time containment
  on each ``pid``/``tid`` track, which is exactly how the spans were
  measured.
* **Schema-registered dataclasses** (:class:`SpanNode`,
  :class:`TraceResult`, :class:`MetricsSnapshot`): the wire shapes
  ``/v1/metrics`` and trace-carrying results use, versioned through
  ``repro.api.schemas`` like every other result type.  Registration
  lives in ``repro.api.results`` (the schema registry's home) so this
  module stays importable without pulling in the api package.
"""

from __future__ import annotations

import dataclasses
import json
import math
import pathlib
from typing import Any

from repro.obs.spans import _SCALARS, SpanRecord


def _clean_value(value) -> Any:
    if isinstance(value, float) and not math.isfinite(value):
        return repr(value)   # strict JSON has no Infinity/NaN literal
    if isinstance(value, _SCALARS):
        return value
    return repr(value)


def _clean_attrs(attributes: dict) -> dict[str, Any]:
    """Coerce attribute values to JSON scalars (repr() for the rest)."""
    return {str(key): _clean_value(value)
            for key, value in attributes.items()}


@dataclasses.dataclass(frozen=True)
class SpanNode:
    """One span in wire form: plain scalars, recursively nested."""

    name: str
    start_s: float
    duration_s: float
    pid: int
    tid: int
    attributes: dict[str, Any] = dataclasses.field(default_factory=dict)
    children: tuple["SpanNode", ...] = ()

    @classmethod
    def from_record(cls, record: SpanRecord) -> "SpanNode":
        return cls(
            name=record.name,
            start_s=record.start_s,
            duration_s=record.duration_s,
            pid=record.pid,
            tid=record.tid,
            attributes=_clean_attrs(record.attributes),
            children=tuple(cls.from_record(child)
                           for child in record.children))

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()


@dataclasses.dataclass(frozen=True)
class TraceResult:
    """A completed trace: the forest of root spans from one run."""

    spans: tuple[SpanNode, ...] = ()

    @classmethod
    def from_records(cls, records) -> "TraceResult":
        return cls(spans=tuple(SpanNode.from_record(r) for r in records))

    def span_names(self) -> tuple[str, ...]:
        """Every span name in the trace, depth-first (tests/assertions)."""
        return tuple(node.name for root in self.spans
                     for node in root.walk())


@dataclasses.dataclass(frozen=True)
class MetricsSnapshot:
    """Point-in-time metrics: what ``GET /v1/metrics`` returns."""

    counters: dict[str, int] = dataclasses.field(default_factory=dict)
    gauges: dict[str, float] = dataclasses.field(default_factory=dict)
    histograms: dict[str, dict] = dataclasses.field(default_factory=dict)
    caches: dict[str, dict] = dataclasses.field(default_factory=dict)

    @classmethod
    def from_registry(cls, registry) -> "MetricsSnapshot":
        snap = registry.snapshot()
        return cls(counters=snap["counters"], gauges=snap["gauges"],
                   histograms=snap["histograms"], caches=snap["caches"])


def chrome_trace_events(records) -> list[dict]:
    """Flatten span trees into Chrome complete events (``ph: "X"``)."""
    events: list[dict] = []

    def emit(record: SpanRecord):
        events.append({
            "name": record.name,
            "ph": "X",
            "ts": record.start_s * 1e6,        # perf_counter µs
            "dur": record.duration_s * 1e6,
            "pid": record.pid,
            "tid": record.tid,
            "args": _clean_attrs(record.attributes),
        })
        for child in record.children:
            emit(child)

    for record in records:
        emit(record)
    return events


def write_chrome_trace(path, records) -> pathlib.Path:
    """Write the trace-event JSON file Perfetto loads; returns path."""
    out = pathlib.Path(path)
    payload = {
        "traceEvents": chrome_trace_events(records),
        "displayTimeUnit": "ms",
    }
    out.write_text(json.dumps(payload, indent=1, sort_keys=True),
                   encoding="utf-8")
    return out
