"""Unified metrics: named counters, gauges, histograms, cache sources.

One process-wide :class:`MetricsRegistry` replaces the three divergent
stats dicts that grew organically (``Workspace.CacheStats``,
``corner_memo_stats()``, ``repro.compute.lowercache.stats()``).  The
pre-existing stores keep their own counters — they are the source of
truth — and register *sources*: zero-argument callables the registry
polls at snapshot time, so a snapshot always reflects live state
without double-counting.

Metric kinds:

* **counter** — monotonically increasing count (``inc``);
* **gauge** — last-set value (``set_gauge``), e.g. queue depth;
* **histogram** — streaming count/sum/min/max summary (``observe``),
  e.g. job latency.  Full bucketed histograms are overkill for the
  job service's volume; min/max/mean answer the tuning questions.

Everything is stdlib, lock-guarded, and always-on: unlike spans, the
metric stores are a handful of dict updates per *request* (not per
gate), so there is no disabled fast path to maintain.
"""

from __future__ import annotations

import threading
from typing import Any, Callable


class MetricsRegistry:
    """Thread-safe registry of counters, gauges, histograms, sources."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._hists: dict[str, dict[str, float]] = {}
        self._sources: dict[str, Callable[[], dict]] = {}

    # -- writers --------------------------------------------------

    def inc(self, name: str, amount: int = 1):
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float):
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float):
        with self._lock:
            hist = self._hists.get(name)
            if hist is None:
                self._hists[name] = {"count": 1, "sum": value,
                                     "min": value, "max": value}
            else:
                hist["count"] += 1
                hist["sum"] += value
                hist["min"] = min(hist["min"], value)
                hist["max"] = max(hist["max"], value)

    def register_source(self, name: str, fn: Callable[[], dict]):
        """Register (or replace) a named cache-stats source.

        ``fn`` is polled at snapshot time and must return a plain dict
        of counters for that cache (hits/misses/...).  Replacement is
        silent: a fresh ``Workspace`` re-registering "workspace" is
        the normal service-restart path, not an error.
        """
        with self._lock:
            self._sources[name] = fn

    def unregister_source(self, name: str):
        with self._lock:
            self._sources.pop(name, None)

    # -- readers --------------------------------------------------

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def gauge(self, name: str, default: float = 0.0) -> float:
        with self._lock:
            return self._gauges.get(name, default)

    def snapshot(self) -> dict[str, Any]:
        """A point-in-time copy: metrics plus polled cache sources."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            hists = {name: dict(h) for name, h in self._hists.items()}
            sources = dict(self._sources)
        caches: dict[str, dict] = {}
        for name, fn in sorted(sources.items()):
            try:
                caches[name] = dict(fn())
            except Exception:  # a dead source must not kill /v1/metrics
                caches[name] = {"error": 1}
        return {"counters": counters, "gauges": gauges,
                "histograms": hists, "caches": caches}

    def reset(self):
        """Clear all metrics and sources (tests)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._hists.clear()
            self._sources.clear()


#: The process-wide registry every repro layer writes to.
REGISTRY = MetricsRegistry()


def _corner_memo_source() -> dict:
    from repro.variation.corners import corner_memo_stats

    return corner_memo_stats()


def _lowering_source() -> dict:
    try:
        from repro.compute import lowercache
    except ImportError:  # scalar-only install: no numpy, no lowering
        return {}
    return lowercache.stats()


def install_builtin_sources(registry: MetricsRegistry | None = None):
    """Attach the library-wide cache sources (corner memo, lowering).

    Idempotent; called lazily by the consumers that serve snapshots
    (the job service, the CLI) rather than at import, so ``repro.obs``
    stays import-light.
    """
    reg = registry if registry is not None else REGISTRY
    reg.register_source("corner_memo", _corner_memo_source)
    reg.register_source("lowering", _lowering_source)
