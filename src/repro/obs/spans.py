"""Hierarchical spans: nested, attributed wall-clock measurements.

A *span* is one timed region of the flow — a pipeline stage, an STA
propagation, a Monte-Carlo chunk — opened as a context manager::

    from repro.obs import span

    with span("sta.full_run", instances=10_000) as sp:
        ...
        sp.set(backend="numpy")        # attributes set mid-span

Spans nest: a span opened while another is live on the same thread
becomes its child, so one flow run produces one tree whose shape is a
deterministic function of the work performed (timestamps vary, the
tree does not — pinned by ``tests/obs/test_spans.py``).

Collection is **disabled by default** and the disabled path is a
no-op: :func:`span` returns a shared null object whose enter/exit do
nothing, so instrumented hot code pays one truthiness check per span
site (benchmarked in ``benchmarks/test_bench_obs.py``, asserted < 2 %
on the 10k-instance STA bench).  :func:`timed_span` is the variant
for call sites that need the elapsed wall-clock *regardless* of
tracing (e.g. :class:`~repro.core.stages.StageRunner`, whose
``StageReport.elapsed_s`` it feeds): it always performs the same
``perf_counter`` pair the hand-rolled timing code used, and records a
span only when tracing is enabled.

Thread/process model:

* each thread keeps its own open-span stack (``threading.local``), so
  service worker threads trace concurrently without interleaving;
* completed *root* spans land in a process-wide list guarded by a
  lock; :func:`take_records` drains it;
* child processes (the :class:`~repro.runner.ExperimentRunner` pool)
  trace independently and ship their finished roots back to the
  parent, which grafts them with :func:`adopt` — under the currently
  open span when there is one, else as new roots.  Timestamps are
  ``time.perf_counter`` values and therefore process-local; exported
  traces keep per-process tracks (``pid``/``tid``) instead of
  pretending the clocks align.

Enable with :func:`enable` / the CLI ``--trace`` flag / the
``REPRO_TRACE`` environment variable (any value other than
``"" / 0 / off / none / disabled`` enables tracing at import).
"""

from __future__ import annotations

import dataclasses
import os
import threading
import time
from typing import Any

_FALSY = {"", "0", "off", "none", "disabled"}

ENV_VAR = "REPRO_TRACE"

#: Safety cap on retained finished root spans; beyond it new roots are
#: dropped (counted in :func:`dropped_roots`) so an always-on tracer
#: cannot grow without bound.
MAX_ROOTS = 50_000

#: Attribute values that serialize as-is; anything else is repr()'d.
_SCALARS = (str, int, float, bool, type(None))


@dataclasses.dataclass
class SpanRecord:
    """One completed span (picklable, ships across the process pool)."""

    name: str
    start_s: float        # time.perf_counter() at entry (process epoch)
    duration_s: float
    pid: int
    tid: int
    attributes: dict[str, Any] = dataclasses.field(default_factory=dict)
    children: list["SpanRecord"] = dataclasses.field(default_factory=list)

    def shape(self):
        """The timestamp-free tree: (name, attributes, child shapes).

        Two runs of the same work produce equal shapes — the
        determinism contract tests assert on.
        """
        return (self.name, tuple(sorted(self.attributes.items())),
                tuple(child.shape() for child in self.children))

    def walk(self):
        """Depth-first iteration over this span and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()


class _Tracer:
    """Process-wide collection state."""

    def __init__(self):
        self.enabled = False
        self._lock = threading.Lock()
        self._roots: list[SpanRecord] = []
        self._dropped = 0
        self._local = threading.local()

    def stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def finish(self, record: SpanRecord):
        stack = self.stack()
        if stack:
            stack[-1].children.append(record)
            return
        with self._lock:
            if len(self._roots) >= MAX_ROOTS:
                self._dropped += 1
            else:
                self._roots.append(record)

    def adopt(self, records):
        records = [r for r in records if isinstance(r, SpanRecord)]
        if not records:
            return
        stack = self.stack()
        if stack:
            stack[-1].children.extend(records)
            return
        with self._lock:
            room = MAX_ROOTS - len(self._roots)
            self._roots.extend(records[:max(room, 0)])
            self._dropped += max(len(records) - room, 0)

    def take(self) -> list[SpanRecord]:
        with self._lock:
            records, self._roots = self._roots, []
            return records

    def reset(self):
        with self._lock:
            self._roots = []
            self._dropped = 0
        self._local = threading.local()


_TRACER = _Tracer()


class _NullSpan:
    """Shared no-op span: the disabled fast path."""

    __slots__ = ()
    elapsed_s = 0.0

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def set(self, **attributes):
        pass


_NULL = _NullSpan()


class _TimedSpan:
    """Measures wall-clock; records a span only when asked to."""

    __slots__ = ("name", "attributes", "_record", "_children",
                 "_t0", "elapsed_s")

    def __init__(self, name: str, attributes: dict, record: bool):
        self.name = name
        self.attributes = attributes
        self._record = record
        self._children: list[SpanRecord] = []
        self.elapsed_s = 0.0

    def set(self, **attributes):
        """Attach attributes mid-span (values must be JSON scalars;
        anything else is repr()'d at export time)."""
        self.attributes.update(attributes)

    def __enter__(self):
        if self._record:
            _TRACER.stack().append(_OpenFrame(self))
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc):
        t1 = time.perf_counter()
        self.elapsed_s = t1 - self._t0
        if self._record:
            frame = _TRACER.stack().pop()
            record = SpanRecord(
                name=self.name, start_s=self._t0,
                duration_s=self.elapsed_s,
                pid=os.getpid(), tid=threading.get_ident(),
                attributes=dict(self.attributes),
                children=frame.children)
            _TRACER.finish(record)
        return False


class _OpenFrame:
    """A live span on the thread stack, accumulating child records."""

    __slots__ = ("span", "children")

    def __init__(self, span: _TimedSpan):
        self.span = span
        self.children: list[SpanRecord] = []


# _OpenFrame needs to look like a record sink for _Tracer.finish/adopt.
# (finish/adopt append to stack[-1].children, which both SpanRecord and
# _OpenFrame expose.)


def span(name: str, **attributes):
    """A recorded span when tracing is enabled, else a shared no-op."""
    if not _TRACER.enabled:
        return _NULL
    return _TimedSpan(name, attributes, record=True)


def timed_span(name: str, **attributes):
    """A span that always measures ``elapsed_s``.

    When tracing is disabled this is exactly the ``perf_counter``
    enter/exit pair the call site would otherwise hand-roll; when
    enabled it additionally records the span.
    """
    return _TimedSpan(name, attributes, record=_TRACER.enabled)


def enable(on: bool = True):
    """Turn span collection on (or off; off keeps collected records)."""
    _TRACER.enabled = bool(on)


def disable():
    enable(False)


def is_enabled() -> bool:
    return _TRACER.enabled


def take_records() -> list[SpanRecord]:
    """Drain (and return) the finished root spans collected so far."""
    return _TRACER.take()


def adopt(records):
    """Graft finished spans (e.g. shipped from a pool worker) into the
    current trace: under the open span if one is live on this thread,
    else as new roots.  No-op when tracing is disabled."""
    if _TRACER.enabled:
        _TRACER.adopt(records)


def dropped_roots() -> int:
    """Roots dropped by the :data:`MAX_ROOTS` safety cap."""
    return _TRACER._dropped


def reset():
    """Clear all collected spans and the dropped counter (tests)."""
    _TRACER.reset()


def _env_enabled() -> bool:
    return os.environ.get(ENV_VAR, "").strip().lower() not in _FALSY


if _env_enabled():  # pragma: no cover - exercised via subprocess in CI
    enable()
