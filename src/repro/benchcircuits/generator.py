"""Seeded random gate-level circuit generator.

Produces generic-gate netlists (NAND2/NOR2/... names that
:func:`repro.netlist.techmap.technology_map` binds to a library) with a
controlled size, I/O count, flip-flop count and **depth profile**:

* ``layered`` — gates sit in uniform layers, each consuming the layer
  below; almost every path has near-maximal depth, so a timing
  constraint leaves *many* critical cells (the paper's circuit A
  profile);
* ``tapered`` — a free random DAG with geometric look-back; path depths
  spread widely, so few cells end up critical (circuit B profile).

The generator is fully deterministic for a given config.
"""

from __future__ import annotations

import dataclasses
import random

from repro.errors import ReproError
from repro.netlist.core import Netlist, PinDirection

#: (generic base, arity, weight) — the gate mix.
DEFAULT_GATE_MIX = (
    ("NAND", 2, 0.28),
    ("NOR", 2, 0.14),
    ("AND", 2, 0.10),
    ("OR", 2, 0.10),
    ("INV", 1, 0.12),
    ("XOR", 2, 0.08),
    ("NAND", 3, 0.10),
    ("NOR", 3, 0.04),
    ("NAND", 4, 0.04),
)


@dataclasses.dataclass(frozen=True)
class GeneratorConfig:
    """Parameters of one synthetic circuit."""

    n_gates: int
    n_inputs: int
    n_outputs: int
    n_ffs: int = 0
    depth: int = 12
    style: str = "layered"          # "layered" | "tapered"
    seed: int = 1
    gate_mix: tuple = DEFAULT_GATE_MIX

    def __post_init__(self):
        if self.n_gates < 1 or self.n_inputs < 1 or self.n_outputs < 1:
            raise ReproError("gates/inputs/outputs must all be positive")
        if self.style not in ("layered", "tapered", "grid"):
            raise ReproError(f"unknown style {self.style!r}")
        if self.depth < 1:
            raise ReproError("depth must be at least 1")


def _pick_gate(rng: random.Random, mix) -> tuple[str, int]:
    total = sum(w for _b, _a, w in mix)
    roll = rng.uniform(0.0, total)
    acc = 0.0
    for base, arity, weight in mix:
        acc += weight
        if roll <= acc:
            return base, arity
    return mix[-1][0], mix[-1][1]


def generate_circuit(name: str, config: GeneratorConfig) -> Netlist:
    """Generate a deterministic generic-gate netlist."""
    rng = random.Random(config.seed)
    netlist = Netlist(name)

    sources: list[str] = []
    for i in range(config.n_inputs):
        port = netlist.add_input(f"pi{i}")
        sources.append(port.net.name)
    ff_nets: list[str] = []
    if config.n_ffs:
        if "CLK" not in netlist.ports:
            netlist.add_input("CLK")
        for i in range(config.n_ffs):
            q_net = f"ffq{i}"
            netlist.get_or_create_net(q_net)
            ff_nets.append(q_net)
            sources.append(q_net)

    if config.style == "grid":
        # Grid = datapath-array profile (the circuit A stand-in): a
        # depth x width mesh of uniform 2-input gates where every cell
        # lies on a maximal-depth path, so a tight margin leaves a
        # large near-critical fraction — the regime Table 1's circuit A
        # numbers imply.
        gate_nets = _generate_grid(netlist, config, rng, sources)
        per_layer = max(config.n_gates // config.depth, 1)
        late = gate_nets[-max(per_layer, 1):]
    elif config.style == "layered":
        # Layered: endpoints at maximal depth, mixed gate types.
        gate_nets = _generate_layered(netlist, config, rng, sources)
        per_layer = max(config.n_gates // config.depth, 1)
        late = gate_nets[-max(2 * per_layer, 1):]
    else:
        gate_nets = _generate_tapered(netlist, config, rng, sources)
        # Tapered = the circuit B profile: endpoint depths spread out.
        late = gate_nets[-max(len(gate_nets) // 2, 1):]

    # Flip-flops: D from late nets, Q drives the reserved source nets.
    for i, q_net in enumerate(ff_nets):
        inst = netlist.add_instance(f"ff{i}", "DFF")
        d_net = rng.choice(late)
        netlist.connect(inst, "D", d_net, PinDirection.INPUT)
        netlist.connect(inst, "CK", "CLK", PinDirection.INPUT)
        netlist.connect(inst, "Q", q_net, PinDirection.OUTPUT)

    # Primary outputs from distinct late nets.
    pool = [n for n in late if n not in netlist.ports]
    rng.shuffle(pool)
    picked = pool[-config.n_outputs:] if len(pool) >= config.n_outputs \
        else pool
    for net_name in picked:
        _expose_output(netlist, net_name)
    return netlist


def _expose_output(netlist: Netlist, net_name: str):
    from repro.netlist.core import Port, PortDirection

    port_name = net_name
    if port_name in netlist.ports:
        port_name = f"{net_name}_po"
    port = Port(port_name, PortDirection.OUTPUT)
    netlist.ports[port_name] = port
    net = netlist.get_or_create_net(net_name)
    port.net = net
    net.sink_ports.append(port)


_PIN_NAMES = tuple("ABCD")


def _add_gate(netlist: Netlist, rng: random.Random, config: GeneratorConfig,
              index: int, candidates: list[str]) -> str:
    base, arity = _pick_gate(rng, config.gate_mix)
    arity = min(arity, len(candidates))
    if arity == 0:
        raise ReproError("no candidate nets to drive a gate")
    if arity == 1:
        cell = "INV"
    else:
        cell = f"{base}{arity}" if base not in ("INV", "BUF") else base
    out_net = f"n{index}"
    inst = netlist.add_instance(f"g{index}", cell)
    chosen = rng.sample(candidates, arity)
    for pin_name, src in zip(_PIN_NAMES, chosen):
        netlist.connect(inst, pin_name, src, PinDirection.INPUT)
    netlist.connect(inst, "Z", out_net, PinDirection.OUTPUT)
    return out_net


def _generate_layered(netlist: Netlist, config: GeneratorConfig,
                      rng: random.Random, sources: list[str]) -> list[str]:
    per_layer = max(config.n_gates // config.depth, 1)
    produced: list[str] = []
    previous = list(sources)
    index = 0
    for layer in range(config.depth):
        layer_nets: list[str] = []
        remaining = config.n_gates - index
        layers_left = config.depth - layer
        count = min(max(remaining // layers_left, 1), remaining)
        for _ in range(count):
            if index >= config.n_gates:
                break
            # Mostly the previous layer; a sprinkle of older nets keeps
            # reconvergence realistic.
            candidates = previous if rng.random() < 0.85 or not produced \
                else produced
            layer_nets.append(_add_gate(netlist, rng, config, index,
                                        candidates))
            index += 1
        if layer_nets:
            previous = layer_nets
            produced.extend(layer_nets)
        if index >= config.n_gates:
            break
    return produced


def _generate_grid(netlist: Netlist, config: GeneratorConfig,
                   rng: random.Random, sources: list[str]) -> list[str]:
    """Depth x width mesh of uniform 2-input gates (datapath array).

    Gate (i, j) consumes nets (j, j+1) of row i-1, like the carry/sum
    lattice of an array multiplier; rows alternate NAND2/NOR2 so every
    maximal path crosses the identical gate sequence — per-path delay
    is uniform and, under a tight margin, *most* of the circuit is
    near-critical (the timing-wall profile aggressive synthesis
    produces on real datapaths).
    """
    del rng  # fully deterministic by construction
    width = max(config.n_gates // config.depth, 2)
    produced: list[str] = []
    # Feed the first row from flip-flop outputs when available (they
    # are placed inside the die, keeping first-stage wires short and
    # path delays uniform); fall back to primary inputs.
    ff_first = sorted(sources, key=lambda s: 0 if s.startswith("ffq") else 1)
    previous = ff_first
    index = 0
    for layer in range(config.depth):
        row: list[str] = []
        for j in range(width):
            if index >= config.n_gates:
                break
            cell = "NAND2" if layer % 2 == 0 else "NOR2"
            out_net = f"n{index}"
            inst = netlist.add_instance(f"g{index}", cell)
            # Clamp (no wraparound): keeps every net physically local.
            a = previous[min(j, len(previous) - 1)]
            b = previous[min(j + 1, len(previous) - 1)]
            netlist.connect(inst, "A", a, PinDirection.INPUT)
            netlist.connect(inst, "B", b, PinDirection.INPUT)
            netlist.connect(inst, "Z", out_net, PinDirection.OUTPUT)
            row.append(out_net)
            index += 1
        if row:
            previous = row
            produced.extend(row)
        if index >= config.n_gates:
            break
    return produced


def _generate_tapered(netlist: Netlist, config: GeneratorConfig,
                      rng: random.Random, sources: list[str]) -> list[str]:
    produced: list[str] = []
    all_nets = list(sources)
    window = max(4 * config.depth, 16)
    for index in range(config.n_gates):
        recent = all_nets[-window:]
        produced.append(_add_gate(netlist, rng, config, index, recent))
        all_nets.append(produced[-1])
    return produced
