"""ISCAS-89 sequential benchmarks.

``s27`` ships verbatim; larger members are synthetic stand-ins with the
published gate/flip-flop/IO statistics (substitution documented in
DESIGN.md).
"""

from __future__ import annotations

import dataclasses

from repro.benchcircuits.generator import GeneratorConfig, generate_circuit
from repro.netlist.bench_io import parse_bench
from repro.netlist.core import Netlist

#: The genuine ISCAS-89 s27 netlist (3 flip-flops, 10 gates).
S27_BENCH = """\
# s27 (ISCAS-89)
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
"""


@dataclasses.dataclass(frozen=True)
class Iscas89Spec:
    """Published size statistics of an ISCAS-89 circuit."""

    gates: int
    ffs: int
    inputs: int
    outputs: int
    depth: int


ISCAS89_SPECS: dict[str, Iscas89Spec] = {
    "s298": Iscas89Spec(119, 14, 3, 6, 9),
    "s344": Iscas89Spec(160, 15, 9, 11, 20),
    "s386": Iscas89Spec(159, 6, 7, 7, 11),
    "s526": Iscas89Spec(193, 21, 3, 6, 9),
    "s820": Iscas89Spec(289, 5, 18, 19, 10),
    "s1196": Iscas89Spec(529, 18, 14, 14, 24),
    "s1423": Iscas89Spec(657, 74, 17, 5, 59),
    "s5378": Iscas89Spec(2779, 179, 35, 49, 25),
    "s9234": Iscas89Spec(5597, 211, 36, 39, 58),
}


def load_s27() -> Netlist:
    """The genuine s27 benchmark."""
    return parse_bench(S27_BENCH, name="s27")


def load_iscas89(name: str) -> Netlist:
    """Load an ISCAS-89 circuit (s27 real, others synthetic stand-ins)."""
    if name == "s27":
        return load_s27()
    spec = ISCAS89_SPECS.get(name)
    if spec is None:
        raise KeyError(f"unknown ISCAS-89 circuit {name!r}")
    config = GeneratorConfig(
        n_gates=spec.gates,
        n_inputs=spec.inputs,
        n_outputs=spec.outputs,
        n_ffs=spec.ffs,
        depth=spec.depth,
        style="tapered",
        seed=sum(ord(c) for c in name))
    return generate_circuit(name, config)


def iscas89_names() -> list[str]:
    return ["s27"] + sorted(ISCAS89_SPECS)
