"""Benchmark circuits.

* :mod:`repro.benchcircuits.generator` — seeded random gate-level
  circuit generator (layered or tapered depth profiles).
* :mod:`repro.benchcircuits.iscas85` — ISCAS-85: the real ``c17`` plus
  synthetic stand-ins matching the published size statistics of the
  larger members (the suite itself is not redistributable here; the
  substitution is documented in DESIGN.md).
* :mod:`repro.benchcircuits.iscas89` — ISCAS-89: the real ``s27`` plus
  synthetic s-series stand-ins.
* :mod:`repro.benchcircuits.suite` — registry, including the paper's
  circuit A / circuit B substitutes.
"""

from repro.benchcircuits.generator import GeneratorConfig, generate_circuit
from repro.benchcircuits.suite import available_circuits, load_circuit

__all__ = [
    "GeneratorConfig",
    "generate_circuit",
    "available_circuits",
    "load_circuit",
]
