"""ISCAS-85 combinational benchmarks.

``c17`` ships verbatim (six NAND2s — small enough to embed).  The
larger suite members are replaced by *synthetic stand-ins* generated to
the published size statistics (gate count, I/O count, logic depth) of
each circuit; the substitution is recorded in DESIGN.md.  Stand-ins are
seeded deterministically per circuit name, so every run sees identical
netlists.
"""

from __future__ import annotations

import dataclasses

from repro.benchcircuits.generator import GeneratorConfig, generate_circuit
from repro.netlist.bench_io import parse_bench
from repro.netlist.core import Netlist

#: The genuine ISCAS-85 c17 netlist.
C17_BENCH = """\
# c17 (ISCAS-85)
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
"""


@dataclasses.dataclass(frozen=True)
class Iscas85Spec:
    """Published size statistics of an ISCAS-85 circuit."""

    gates: int
    inputs: int
    outputs: int
    depth: int


#: Published statistics of the ISCAS-85 suite (gates/PI/PO/levels).
ISCAS85_SPECS: dict[str, Iscas85Spec] = {
    "c432": Iscas85Spec(160, 36, 7, 17),
    "c499": Iscas85Spec(202, 41, 32, 11),
    "c880": Iscas85Spec(383, 60, 26, 24),
    "c1355": Iscas85Spec(546, 41, 32, 24),
    "c1908": Iscas85Spec(880, 33, 25, 40),
    "c2670": Iscas85Spec(1193, 157, 64, 32),
    "c3540": Iscas85Spec(1669, 50, 22, 47),
    "c5315": Iscas85Spec(2307, 178, 123, 49),
    "c6288": Iscas85Spec(2416, 32, 32, 124),
    "c7552": Iscas85Spec(3512, 207, 108, 43),
}


def load_c17() -> Netlist:
    """The genuine c17 benchmark."""
    return parse_bench(C17_BENCH, name="c17")


def load_iscas85(name: str) -> Netlist:
    """Load an ISCAS-85 circuit (c17 real, others synthetic stand-ins)."""
    if name == "c17":
        return load_c17()
    spec = ISCAS85_SPECS.get(name)
    if spec is None:
        raise KeyError(f"unknown ISCAS-85 circuit {name!r}")
    config = GeneratorConfig(
        n_gates=spec.gates,
        n_inputs=spec.inputs,
        n_outputs=spec.outputs,
        depth=spec.depth,
        style="layered",
        seed=sum(ord(c) for c in name))
    return generate_circuit(name, config)


def iscas85_names() -> list[str]:
    return ["c17"] + sorted(ISCAS85_SPECS)
