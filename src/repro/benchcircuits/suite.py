"""Circuit registry, including the paper's circuit A / circuit B.

The paper evaluates two unnamed TOSHIBA production circuits.  We stand
in two synthetic designs whose *profiles* reproduce what Table 1
implies about them:

* ``circuitA`` — layered (uniform path depth): under a tight timing
  margin, a large fraction of cells sits on near-critical paths, so
  many MT-cells are needed — matching A's larger area overheads
  (164.8 % conventional / 133.2 % improved).
* ``circuitB`` — tapered (spread path depth): fewer critical cells,
  matching B's smaller overheads (142.2 % / 115.7 %).
"""

from __future__ import annotations

from typing import Callable

from repro.benchcircuits.generator import GeneratorConfig, generate_circuit
from repro.benchcircuits.iscas85 import iscas85_names, load_iscas85
from repro.benchcircuits.iscas89 import iscas89_names, load_iscas89
from repro.netlist.core import Netlist


def load_circuit_a() -> Netlist:
    """The paper's circuit A stand-in (timing-tight, many MT-cells)."""
    return generate_circuit("circuitA", GeneratorConfig(
        n_gates=1400, n_inputs=48, n_outputs=32, n_ffs=96,
        depth=40, style="grid", seed=2005))


def load_circuit_b() -> Netlist:
    """The paper's circuit B stand-in (looser, fewer MT-cells)."""
    return generate_circuit("circuitB", GeneratorConfig(
        n_gates=900, n_inputs=40, n_outputs=24, n_ffs=64,
        depth=24, style="grid", seed=2006))


_REGISTRY: dict[str, Callable[[], Netlist]] = {
    "circuitA": load_circuit_a,
    "circuitB": load_circuit_b,
}
for _name in iscas85_names():
    _REGISTRY[_name] = (lambda n=_name: load_iscas85(n))
for _name in iscas89_names():
    _REGISTRY[_name] = (lambda n=_name: load_iscas89(n))


def available_circuits() -> list[str]:
    """Names accepted by :func:`load_circuit`."""
    return sorted(_REGISTRY)


def load_circuit(name: str) -> Netlist:
    """Load a registered circuit by name."""
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise KeyError(
            f"unknown circuit {name!r}; available: "
            f"{', '.join(available_circuits())}") from None
