"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so a
caller embedding the flow can catch one type.  Sub-hierarchies follow the
package layout: parsing, netlist consistency, timing, and the Selective-MT
flow itself each get a dedicated class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ParseError(ReproError):
    """A source file (Liberty, .bench, Verilog, SDC, SPEF) failed to parse.

    Carries optional location information for diagnostics.
    """

    def __init__(self, message: str, filename: str | None = None,
                 line: int | None = None, column: int | None = None):
        self.filename = filename
        self.line = line
        self.column = column
        location = ""
        if filename is not None:
            location = f"{filename}:"
        if line is not None:
            location += f"{line}:"
            if column is not None:
                location += f"{column}:"
        if location:
            message = f"{location} {message}"
        super().__init__(message)


class LibertyError(ParseError):
    """Structural problem in a Liberty library (missing cell, pin, table)."""


class NetlistError(ReproError):
    """Netlist construction or consistency violation."""


class ValidationError(NetlistError):
    """A netlist failed validation (floating nets, multiple drivers, ...)."""


class TimingError(ReproError):
    """Timing analysis failure (no constraints, combinational loop, ...)."""


class PowerError(ReproError):
    """Power/leakage analysis failure."""


class PlacementError(ReproError):
    """Placement failure (overflow, unlegalizable, ...)."""


class RoutingError(ReproError):
    """Routing estimation / extraction failure."""


class VgndError(ReproError):
    """Virtual-ground network construction or analysis failure."""


class SizingError(VgndError):
    """No switch size satisfies the voltage-bounce constraint."""


class FlowError(ReproError):
    """Selective-MT flow orchestration failure."""


class EquivalenceError(ReproError):
    """Two netlists expected to be equivalent are not."""
