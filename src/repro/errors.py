"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so a
caller embedding the flow can catch one type.  Sub-hierarchies follow the
package layout: parsing, netlist consistency, timing, and the Selective-MT
flow itself each get a dedicated class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ParseError(ReproError):
    """A source file (Liberty, .bench, Verilog, SDC, SPEF) failed to parse.

    Carries optional location information for diagnostics.
    """

    def __init__(self, message: str, filename: str | None = None,
                 line: int | None = None, column: int | None = None):
        self.filename = filename
        self.line = line
        self.column = column
        location = ""
        if filename is not None:
            location = f"{filename}:"
        if line is not None:
            location += f"{line}:"
            if column is not None:
                location += f"{column}:"
        if location:
            message = f"{location} {message}"
        super().__init__(message)


class LibertyError(ParseError):
    """Structural problem in a Liberty library (missing cell, pin, table)."""


class NetlistError(ReproError):
    """Netlist construction or consistency violation."""


class ValidationError(NetlistError):
    """A netlist failed validation (floating nets, multiple drivers, ...)."""


class TimingError(ReproError):
    """Timing analysis failure (no constraints, combinational loop, ...)."""


class PowerError(ReproError):
    """Power/leakage analysis failure."""


class PlacementError(ReproError):
    """Placement failure (overflow, unlegalizable, ...)."""


class RoutingError(ReproError):
    """Routing estimation / extraction failure."""


class VgndError(ReproError):
    """Virtual-ground network construction or analysis failure."""


class SizingError(VgndError):
    """No switch size satisfies the voltage-bounce constraint."""


class StandbyError(VgndError):
    """Standby-transition analysis failure (unsized cluster, infeasible
    rush-current budget, unknown power-mode scenario)."""


class FlowError(ReproError):
    """Selective-MT flow orchestration failure."""


class ConfigError(FlowError):
    """A configuration dataclass rejected a field value.

    Subclasses :class:`FlowError` so existing ``except FlowError``
    call sites keep working; carries the offending field name so
    callers (and the job service's 400-equivalent payloads) can point
    at exactly what to fix.
    """

    def __init__(self, field: str, message: str):
        self.field = field
        super().__init__(f"invalid {field}: {message}")


class SchemaError(ReproError):
    """A typed payload failed schema encoding, decoding or round-trip."""


class ServiceError(ReproError):
    """A job-service request was invalid or cannot be satisfied.

    ``status`` mirrors HTTP semantics: 400 malformed request, 404
    unknown job, 409 conflicting state (e.g. cancelling a finished
    job), 429 queue full (back-pressure).  ``retry_after`` is the
    optional hint (seconds) a 429 carries so clients know when to
    retry.
    """

    def __init__(self, message: str, status: int = 400,
                 retry_after: float | None = None):
        self.status = status
        self.retry_after = retry_after
        super().__init__(message)


class EquivalenceError(ReproError):
    """Two netlists expected to be equivalent are not."""
