"""Placement quality metrics."""

from __future__ import annotations

from repro.netlist.core import Net, Netlist
from repro.placement.placer import Placement


def net_bbox(net: Net, placement: Placement) -> tuple[float, float, float, float] | None:
    """Bounding box (x0, y0, x1, y1) of all pins on a net, or None."""
    xs: list[float] = []
    ys: list[float] = []
    if net.driver is not None:
        x, y = placement.location(net.driver.instance.name)
        xs.append(x)
        ys.append(y)
    if net.driver_port is not None:
        x, y = placement.port_locations[net.driver_port.name]
        xs.append(x)
        ys.append(y)
    for pin in net.sinks:
        x, y = placement.location(pin.instance.name)
        xs.append(x)
        ys.append(y)
    for port in net.sink_ports:
        x, y = placement.port_locations[port.name]
        xs.append(x)
        ys.append(y)
    if len(xs) < 2:
        return None
    return min(xs), min(ys), max(xs), max(ys)


def net_hpwl(net: Net, placement: Placement) -> float:
    """Half-perimeter wirelength of one net (um)."""
    bbox = net_bbox(net, placement)
    if bbox is None:
        return 0.0
    x0, y0, x1, y1 = bbox
    return (x1 - x0) + (y1 - y0)


def total_hpwl(netlist: Netlist, placement: Placement) -> float:
    """Total half-perimeter wirelength over all nets (um)."""
    return sum(net_hpwl(net, placement) for net in netlist.nets.values())


def average_net_span(netlist: Netlist, placement: Placement) -> float:
    """Mean HPWL over nets with at least two pins."""
    spans = [net_hpwl(net, placement) for net in netlist.nets.values()]
    spans = [s for s in spans if s > 0.0]
    return sum(spans) / len(spans) if spans else 0.0
