"""Die and row geometry.

A :class:`Floorplan` is derived from the design's total cell area, a
target utilization and an aspect ratio; it exposes the standard-cell
rows that placement and legalization snap to.
"""

from __future__ import annotations

import dataclasses
import math

from repro.device.process import Technology
from repro.errors import PlacementError


@dataclasses.dataclass(frozen=True)
class Row:
    """One standard-cell row."""

    index: int
    y: float          # bottom edge (um)
    height: float
    x_min: float
    x_max: float

    @property
    def width(self) -> float:
        return self.x_max - self.x_min


class Floorplan:
    """Rectangular die with uniform standard-cell rows."""

    def __init__(self, total_cell_area: float, tech: Technology,
                 utilization: float = 0.7, aspect_ratio: float = 1.0):
        if total_cell_area <= 0:
            raise PlacementError("total cell area must be positive")
        if not 0.1 <= utilization <= 1.0:
            raise PlacementError(
                f"utilization {utilization} outside [0.1, 1.0]")
        self.tech = tech
        self.utilization = utilization
        die_area = total_cell_area / utilization
        width = math.sqrt(die_area * aspect_ratio)
        height = die_area / width
        # Round height up to a whole number of rows.
        row_count = max(1, math.ceil(height / tech.row_height))
        self.height = row_count * tech.row_height
        self.width = max(die_area / self.height, tech.site_width * 4)
        # Round width up to whole sites.
        sites = math.ceil(self.width / tech.site_width)
        self.width = sites * tech.site_width
        self.rows = [
            Row(index=i, y=i * tech.row_height, height=tech.row_height,
                x_min=0.0, x_max=self.width)
            for i in range(row_count)
        ]

    @property
    def die_area(self) -> float:
        return self.width * self.height

    def row_at(self, y: float) -> Row:
        """The row whose band contains the y coordinate (clamped)."""
        index = int(y / self.tech.row_height)
        index = max(0, min(index, len(self.rows) - 1))
        return self.rows[index]

    def clamp(self, x: float, y: float) -> tuple[float, float]:
        """Clamp a point into the die."""
        return (min(max(x, 0.0), self.width),
                min(max(y, 0.0), self.height))

    def snap(self, x: float, y: float) -> tuple[float, float]:
        """Snap a point to the nearest site/row origin."""
        x, y = self.clamp(x, y)
        site = self.tech.site_width
        row = self.row_at(y)
        snapped_x = round(x / site) * site
        snapped_x = min(max(snapped_x, 0.0), self.width - site)
        return snapped_x, row.y

    def boundary_positions(self, count: int) -> list[tuple[float, float]]:
        """``count`` evenly spaced positions around the die perimeter.

        Used to pin primary ports.
        """
        if count <= 0:
            return []
        perimeter = 2.0 * (self.width + self.height)
        positions = []
        for i in range(count):
            distance = perimeter * i / count
            if distance < self.width:
                positions.append((distance, 0.0))
            elif distance < self.width + self.height:
                positions.append((self.width, distance - self.width))
            elif distance < 2 * self.width + self.height:
                positions.append(
                    (2 * self.width + self.height - distance, self.height))
            else:
                positions.append(
                    (0.0, 2 * (self.width + self.height) - distance))
        return positions

    def __repr__(self):
        return (f"Floorplan({self.width:.1f}x{self.height:.1f}um, "
                f"{len(self.rows)} rows, util={self.utilization})")
