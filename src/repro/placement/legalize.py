"""Placement legalization.

Two phases:

1. **Row assignment with capacity** — each cell requests the row its
   global-placement y lands in; rows over capacity spill their
   worst-fitting cells to the nearest row with space.
2. **Per-row packing** — cells in each row are sorted by x and packed
   left-to-right at site granularity, clamped so the remaining cells
   always fit; this guarantees zero overlap.
"""

from __future__ import annotations

from repro.errors import PlacementError
from repro.liberty.library import Library
from repro.netlist.core import Netlist
from repro.placement.placer import Placement


def _site_width_of(placement: Placement, netlist: Netlist,
                   library: Library, name: str) -> float:
    """Cell width rounded up to whole placement sites."""
    tech = placement.floorplan.tech
    site = tech.site_width
    inst = netlist.instances.get(name)
    if inst is None or inst.cell_name not in library:
        return site
    cell = library.cell(inst.cell_name)
    width = max(cell.area / tech.row_height, site)
    sites = max(1, int(width / site + 0.999))
    return sites * site


def legalize(placement: Placement, netlist: Netlist,
             library: Library) -> int:
    """Legalize in place; returns the number of cells moved."""
    floorplan = placement.floorplan
    widths = {name: _site_width_of(placement, netlist, library, name)
              for name in placement.locations}

    # --- phase 1: capacity-aware row assignment --------------------------
    rows: dict[int, list[str]] = {row.index: [] for row in floorplan.rows}
    used: dict[int, float] = {row.index: 0.0 for row in floorplan.rows}
    # Wide cells first so they claim space before small ones fragment it.
    order = sorted(placement.locations,
                   key=lambda n: -widths[n])
    capacity = {row.index: row.width for row in floorplan.rows}
    for name in order:
        x, y = placement.locations[name]
        home = floorplan.row_at(y).index
        width = widths[name]
        placed = False
        # Try the home row, then rows by distance.
        for row_index in sorted(capacity,
                                key=lambda r: abs(r - home)):
            if used[row_index] + width <= capacity[row_index] + 1e-9:
                rows[row_index].append(name)
                used[row_index] += width
                placed = True
                break
        if not placed:
            raise PlacementError(
                f"cannot legalize cell {name}: width {width:.2f}um "
                f"exceeds every row's remaining space")

    # --- phase 2: pack each row left-to-right ------------------------------
    moved = 0
    site = floorplan.tech.site_width
    for row in floorplan.rows:
        names = sorted(rows[row.index],
                       key=lambda n: placement.locations[n][0])
        remaining = sum(widths[n] for n in names)
        cursor = 0.0
        for name in names:
            width = widths[name]
            desired = placement.locations[name][0]
            x = max(cursor, desired)
            # Clamp so everything after this cell still fits, snapping
            # down to a site boundary (cursor is always site-aligned,
            # so max() cannot push the tail past the clamp).
            x = min(x, row.width - remaining)
            x = max(int(x / site) * site, cursor)
            if (x, row.y) != placement.locations[name]:
                moved += 1
            placement.locations[name] = (x, row.y)
            cursor = x + width
            remaining -= width

    # Refresh instance annotations.
    for name, (x, y) in placement.locations.items():
        inst = netlist.instances.get(name)
        if inst is not None:
            inst.attributes["x"] = x
            inst.attributes["y"] = y
    return moved
