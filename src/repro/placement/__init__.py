"""Row-based standard-cell placement.

* :mod:`repro.placement.floorplan` — die/row geometry from total cell
  area and utilization.
* :mod:`repro.placement.placer` — seeded force-directed global placement
  followed by row slotting.
* :mod:`repro.placement.legalize` — site snapping and overlap removal.
* :mod:`repro.placement.metrics` — HPWL and congestion proxies.
* :mod:`repro.placement.defio` — DEF-subset writer/reader.
"""

from repro.placement.floorplan import Floorplan
from repro.placement.legalize import legalize
from repro.placement.metrics import net_bbox, total_hpwl
from repro.placement.placer import GlobalPlacer, Placement

__all__ = [
    "Floorplan",
    "legalize",
    "net_bbox",
    "total_hpwl",
    "GlobalPlacer",
    "Placement",
]
