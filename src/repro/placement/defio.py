"""DEF-subset writer and reader for placements.

Enough of the DEF dialect to exchange placements with the outside
world (and to round-trip our own output)::

    VERSION 5.8 ;
    DESIGN c880 ;
    UNITS DISTANCE MICRONS 1000 ;
    DIEAREA ( 0 0 ) ( 120400 120000 ) ;
    COMPONENTS 312 ;
      - g_10 NAND2_X1_LVT + PLACED ( 2400 4800 ) N ;
    END COMPONENTS
    PINS 42 ;
      - N1 + NET N1 + DIRECTION INPUT + PLACED ( 0 1200 ) N ;
    END PINS
    END DESIGN

Distances are stored in DEF database units (microns x 1000).
"""

from __future__ import annotations

import re

from repro.errors import ParseError, PlacementError
from repro.netlist.core import Netlist, PortDirection
from repro.placement.floorplan import Floorplan
from repro.placement.placer import Placement

_DBU = 1000  # database units per micron


def write_def(netlist: Netlist, placement: Placement) -> str:
    """Serialize a placement to DEF text."""
    floorplan = placement.floorplan
    lines = [
        "VERSION 5.8 ;",
        f"DESIGN {netlist.name} ;",
        f"UNITS DISTANCE MICRONS {_DBU} ;",
        f"DIEAREA ( 0 0 ) ( {int(floorplan.width * _DBU)} "
        f"{int(floorplan.height * _DBU)} ) ;",
        f"COMPONENTS {len(placement.locations)} ;",
    ]
    for name, (x, y) in placement.locations.items():
        inst = netlist.instances.get(name)
        cell = inst.cell_name if inst is not None else "UNKNOWN"
        lines.append(f"  - {name} {cell} + PLACED "
                     f"( {int(x * _DBU)} {int(y * _DBU)} ) N ;")
    lines.append("END COMPONENTS")
    lines.append(f"PINS {len(placement.port_locations)} ;")
    for name, (x, y) in placement.port_locations.items():
        port = netlist.ports.get(name)
        direction = "INPUT"
        if port is not None and port.direction == PortDirection.OUTPUT:
            direction = "OUTPUT"
        lines.append(f"  - {name} + NET {name} + DIRECTION {direction} "
                     f"+ PLACED ( {int(x * _DBU)} {int(y * _DBU)} ) N ;")
    lines.append("END PINS")
    lines.append("END DESIGN")
    return "\n".join(lines) + "\n"


_COMPONENT_RE = re.compile(
    r"-\s+(\S+)\s+(\S+)\s+\+\s+PLACED\s+\(\s*(-?\d+)\s+(-?\d+)\s*\)")
_PIN_RE = re.compile(
    r"-\s+(\S+)\s+\+\s+NET\s+\S+\s+\+\s+DIRECTION\s+(\w+)\s+"
    r"\+\s+PLACED\s+\(\s*(-?\d+)\s+(-?\d+)\s*\)")
_DIEAREA_RE = re.compile(
    r"DIEAREA\s+\(\s*(-?\d+)\s+(-?\d+)\s*\)\s+\(\s*(-?\d+)\s+(-?\d+)\s*\)")


def parse_def(text: str, tech) -> tuple[dict[str, tuple[float, float]],
                                        dict[str, tuple[float, float]],
                                        tuple[float, float]]:
    """Parse DEF text.

    Returns (component locations, pin locations, (die width, height)).
    The caller rebuilds a :class:`Placement` via
    :func:`placement_from_def` when a netlist is available.
    """
    die_match = _DIEAREA_RE.search(text)
    if die_match is None:
        raise ParseError("DEF file lacks DIEAREA")
    x0, y0, x1, y1 = (int(v) for v in die_match.groups())
    die = ((x1 - x0) / _DBU, (y1 - y0) / _DBU)
    components: dict[str, tuple[float, float]] = {}
    pins: dict[str, tuple[float, float]] = {}
    in_components = False
    in_pins = False
    for line in text.splitlines():
        stripped = line.strip()
        if stripped.startswith("COMPONENTS"):
            in_components = True
            continue
        if stripped.startswith("END COMPONENTS"):
            in_components = False
            continue
        if stripped.startswith("PINS"):
            in_pins = True
            continue
        if stripped.startswith("END PINS"):
            in_pins = False
            continue
        if in_components:
            match = _COMPONENT_RE.search(stripped)
            if match:
                name, _cell, x, y = match.groups()
                components[name] = (int(x) / _DBU, int(y) / _DBU)
        elif in_pins:
            match = _PIN_RE.search(stripped)
            if match:
                name, _direction, x, y = match.groups()
                pins[name] = (int(x) / _DBU, int(y) / _DBU)
    return components, pins, die


def placement_from_def(text: str, netlist: Netlist, tech,
                       utilization: float = 0.7) -> Placement:
    """Rebuild a :class:`Placement` from DEF text."""
    components, pins, (width, height) = parse_def(text, tech)
    missing = [name for name in netlist.instances if name not in components]
    if missing:
        raise PlacementError(
            f"DEF lacks placements for {len(missing)} instances "
            f"(e.g. {missing[:3]})")
    total_area = width * height * utilization
    floorplan = Floorplan(total_area, tech, utilization=utilization,
                          aspect_ratio=width / height if height else 1.0)
    return Placement(dict(components), dict(pins), floorplan)
