"""Seeded force-directed global placement with row slotting.

The algorithm (deliberately simple but producing the locality the VGND
clusterer needs):

1. ports are pinned evenly around the die boundary;
2. movable cells start at seeded random positions;
3. several Gauss-Seidel sweeps move each cell to the connectivity-
   weighted centroid of its nets (classic force-directed step);
4. because step 3 collapses cells toward the centre, cells are then
   *spread*: sorted by y into row bands of equal capacity, and within
   each band sorted by x and packed with their real widths;
5. legalization snaps to sites and removes residual overlap.

The result is deterministic for a given seed.
"""

from __future__ import annotations

import dataclasses
import random

from repro.errors import PlacementError
from repro.liberty.library import Library
from repro.netlist.core import Netlist
from repro.placement.floorplan import Floorplan


@dataclasses.dataclass
class Placement:
    """Cell coordinates (cell origin, um) plus port positions."""

    locations: dict[str, tuple[float, float]]
    port_locations: dict[str, tuple[float, float]]
    floorplan: Floorplan

    def location(self, inst_name: str) -> tuple[float, float]:
        try:
            return self.locations[inst_name]
        except KeyError:
            raise PlacementError(
                f"instance {inst_name!r} has no placement") from None

    def set_location(self, inst_name: str, x: float, y: float):
        self.locations[inst_name] = self.floorplan.snap(x, y)

    def pin_location(self, owner: str, port: str | None = None
                     ) -> tuple[float, float]:
        """Position of an instance pin (== cell origin) or a port."""
        if owner == "__port__":
            return self.port_locations[port]
        return self.location(owner)

    def ensure_port_location(self, port_name: str) -> tuple[float, float]:
        """Location of a port, pinning late-added ports (MTE) to a corner.

        Ports created after global placement (the flow adds MTE during
        Vth assignment) get deterministic positions along the left die
        edge.
        """
        if port_name not in self.port_locations:
            offset = (len(self.port_locations) % 16) / 16.0
            self.port_locations[port_name] = (
                0.0, self.floorplan.height * offset)
        return self.port_locations[port_name]


class GlobalPlacer:
    """Places one netlist onto a fresh floorplan."""

    def __init__(self, netlist: Netlist, library: Library,
                 utilization: float = 0.7, aspect_ratio: float = 1.0,
                 iterations: int = 24, seed: int = 1):
        self.netlist = netlist
        self.library = library
        self.utilization = utilization
        self.aspect_ratio = aspect_ratio
        self.iterations = iterations
        self.seed = seed

    def _cell_width(self, inst) -> float:
        tech = self.library.tech
        if inst.cell_name in self.library:
            cell = self.library.cell(inst.cell_name)
            if tech is not None and cell.area > 0:
                return max(cell.area / tech.row_height, tech.site_width)
        return tech.site_width if tech is not None else 0.4

    def run(self) -> Placement:
        instances = list(self.netlist.instances.values())
        if not instances:
            raise PlacementError("cannot place an empty netlist")
        total_area = 0.0
        for inst in instances:
            if inst.cell_name in self.library:
                total_area += self.library.cell(inst.cell_name).area
            else:
                total_area += 2.0
        floorplan = Floorplan(total_area, self.library.tech,
                              utilization=self.utilization,
                              aspect_ratio=self.aspect_ratio)

        rng = random.Random(self.seed)
        positions: dict[str, list[float]] = {
            inst.name: [rng.uniform(0, floorplan.width),
                        rng.uniform(0, floorplan.height)]
            for inst in instances
        }

        # Pin ports around the boundary in declaration order.
        port_names = list(self.netlist.ports)
        boundary = floorplan.boundary_positions(len(port_names))
        port_locations = dict(zip(port_names, boundary))

        # Force-directed sweeps.
        for _ in range(self.iterations):
            for inst in instances:
                sum_x = 0.0
                sum_y = 0.0
                weight = 0.0
                for pin in inst.pins.values():
                    net = pin.net
                    if net is None:
                        continue
                    # Weight high-fanout nets down so the clock net does
                    # not glue everything together.
                    fanout = net.fanout()
                    if fanout > 16:
                        continue
                    w = 1.0 / max(fanout, 1)
                    for other in self._net_points(net, inst.name,
                                                  positions, port_locations):
                        sum_x += w * other[0]
                        sum_y += w * other[1]
                        weight += w
                if weight > 0.0:
                    x = sum_x / weight
                    y = sum_y / weight
                    positions[inst.name][0] = x
                    positions[inst.name][1] = y

        # Spread into row bands.
        locations = self._spread(instances, positions, floorplan)
        placement = Placement(locations, port_locations, floorplan)
        self._annotate(placement)
        return placement

    def _net_points(self, net, self_name, positions, port_locations):
        points = []
        connected = []
        if net.driver is not None:
            connected.append(net.driver.instance.name)
        connected.extend(pin.instance.name for pin in net.sinks)
        for name in connected:
            if name != self_name and name in positions:
                points.append(positions[name])
        if net.driver_port is not None:
            points.append(port_locations[net.driver_port.name])
        for port in net.sink_ports:
            points.append(port_locations[port.name])
        return points

    def _spread(self, instances, positions, floorplan):
        """Assign cells to rows by y-order, pack by x-order."""
        row_count = len(floorplan.rows)
        ordered = sorted(instances, key=lambda i: (positions[i.name][1],
                                                   positions[i.name][0]))
        # Distribute by area capacity per row.
        widths = {inst.name: self._cell_width(inst) for inst in instances}
        total_width = sum(widths.values())
        capacity = total_width / row_count
        locations: dict[str, tuple[float, float]] = {}
        index = 0
        for row in floorplan.rows:
            band: list = []
            used = 0.0
            while index < len(ordered) and (used < capacity
                                            or row.index == row_count - 1):
                inst = ordered[index]
                band.append(inst)
                used += widths[inst.name]
                index += 1
            band.sort(key=lambda i: positions[i.name][0])
            # Pack with proportional gaps.
            free = max(row.width - used, 0.0)
            gap = free / (len(band) + 1) if band else 0.0
            x = gap
            for inst in band:
                locations[inst.name] = floorplan.snap(x, row.y)
                x += widths[inst.name] + gap
        if index < len(ordered):
            raise PlacementError(
                f"row capacity exhausted with {len(ordered) - index} cells "
                f"left; lower utilization")
        return locations

    def _annotate(self, placement: Placement):
        """Record coordinates on instance attributes for downstream use."""
        for name, (x, y) in placement.locations.items():
            inst = self.netlist.instances.get(name)
            if inst is not None:
                inst.attributes["x"] = x
                inst.attributes["y"] = y


def place_incremental(placement: Placement, netlist: Netlist,
                      library: Library, inst_name: str,
                      near: tuple[float, float]) -> tuple[float, float]:
    """Place one new instance (switch/holder/buffer) near a point.

    Used by flow stages that add cells after global placement; the cell
    is snapped to the closest legal site to ``near``.
    """
    x, y = placement.floorplan.snap(*near)
    placement.locations[inst_name] = (x, y)
    inst = netlist.instances.get(inst_name)
    if inst is not None:
        inst.attributes["x"] = x
        inst.attributes["y"] = y
    return x, y
