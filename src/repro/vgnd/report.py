"""Virtual-ground network reports."""

from __future__ import annotations

from repro.liberty.library import Library
from repro.vgnd.network import VgndNetwork


def render_network_table(network: VgndNetwork, library: Library) -> str:
    """Per-cluster table plus roll-up (the CoolPower-style log)."""
    lines = [
        "VGND switch structure",
        f"{'cluster':>7} {'cells':>6} {'rail(um)':>9} {'I(mA)':>7} "
        f"{'switch':<12} {'Ron(kOhm)':>10} {'bounce(mV)':>11}",
    ]
    from repro.device.mosfet import MosfetModel

    tech = library.tech
    model = MosfetModel(tech, tech.vth_high, "nmos")
    for cluster in network.clusters:
        ron = 0.0
        if cluster.switch_cell:
            width = library.cell(cluster.switch_cell).switch_width_um
            ron = model.on_resistance(width)
        lines.append(
            f"{cluster.index:>7} {cluster.size:>6} "
            f"{cluster.rail_length_um:9.1f} {cluster.current_ma:7.3f} "
            f"{cluster.switch_cell or '-':<12} {ron:10.4f} "
            f"{cluster.bounce_v * 1e3:11.2f}")
    summary = network.summary()
    lines.append(
        f"total: {summary['clusters']:.0f} clusters, "
        f"{summary['mt_cells']:.0f} MT-cells, "
        f"switch width {network.total_switch_width(library):.1f} um, "
        f"switch leakage {network.total_switch_leakage_nw(library):.3f} nW, "
        f"worst bounce {summary['worst_bounce_v'] * 1e3:.2f} mV "
        f"(limit {summary['bounce_limit_v'] * 1e3:.2f} mV)")
    return "\n".join(lines)
