"""Virtual-ground network reports.

Rendering only: every dict-shaped payload these tables are built from
comes from the :mod:`repro.api.schemas` registry (the typed standby
dataclasses' ``as_dict()`` delegate there), never from ad-hoc
serialization — the PR-4 "one serialization registry" invariant.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.liberty.library import Library
from repro.vgnd.network import VgndNetwork

if TYPE_CHECKING:
    from repro.standby.engine import StandbyResult


def render_network_table(network: VgndNetwork, library: Library) -> str:
    """Per-cluster table plus roll-up (the CoolPower-style log)."""
    lines = [
        "VGND switch structure",
        f"{'cluster':>7} {'cells':>6} {'rail(um)':>9} {'I(mA)':>7} "
        f"{'switch':<12} {'Ron(kOhm)':>10} {'bounce(mV)':>11}",
    ]
    from repro.device.mosfet import MosfetModel

    tech = library.tech
    model = MosfetModel(tech, tech.vth_high, "nmos")
    for cluster in network.clusters:
        ron = 0.0
        if cluster.switch_cell:
            width = library.cell(cluster.switch_cell).switch_width_um
            ron = model.on_resistance(width)
        lines.append(
            f"{cluster.index:>7} {cluster.size:>6} "
            f"{cluster.rail_length_um:9.1f} {cluster.current_ma:7.3f} "
            f"{cluster.switch_cell or '-':<12} {ron:10.4f} "
            f"{cluster.bounce_v * 1e3:11.2f}")
    summary = network.summary()
    lines.append(
        f"total: {summary['clusters']:.0f} clusters, "
        f"{summary['mt_cells']:.0f} MT-cells, "
        f"switch width {network.total_switch_width(library):.1f} um, "
        f"switch leakage {network.total_switch_leakage_nw(library):.3f} nW, "
        f"worst bounce {summary['worst_bounce_v'] * 1e3:.2f} mV "
        f"(limit {summary['bounce_limit_v'] * 1e3:.2f} mV)")
    return "\n".join(lines)


def _fmt_ns(value: float) -> str:
    return "inf" if value == float("inf") else f"{value:.1f}"


def render_standby_table(result: "StandbyResult") -> str:
    """The standby-transition signoff report, three tables deep:
    per-cluster transients, the staged wake-up schedule, and the
    (scenario x corner) savings grid."""
    lines = [
        f"Standby-transition signoff — {result.circuit} "
        f"({result.technique.value}, {result.clusters} clusters, "
        f"backend {result.compute_backend})",
        "",
        f"{'cluster':>7} {'cells':>6} {'C(pF)':>8} {'Vss(V)':>7} "
        f"{'tau_w(ns)':>10} {'rush(mA)':>9} {'wake(ns)':>9} "
        f"{'sleep(ns)':>10} {'E/cyc(pJ)':>10}",
    ]
    for tr in result.transients:
        lines.append(
            f"{tr.cluster_index:>7} {tr.members:>6} "
            f"{tr.capacitance_pf:8.4f} {tr.v_standby_v:7.3f} "
            f"{tr.tau_wake_ns:10.4f} {tr.peak_rush_ma:9.3f} "
            f"{tr.wake_latency_ns:9.4f} {tr.sleep_latency_ns:10.2f} "
            f"{tr.energy_per_cycle_pj:10.4f}")
    schedule = result.schedule
    lines.append(
        f"wake-up schedule: {schedule.bins} bin(s), budget "
        f"{schedule.budget_ma:.3f} mA, peak {schedule.peak_aggregate_ma:.3f}"
        f" mA, latency {schedule.total_latency_ns:.4f} ns "
        f"(serial {schedule.serial_latency_ns:.4f} ns)")
    for event in schedule.events:
        lines.append(
            f"  bin {event.bin_index}: cluster {event.cluster_index} "
            f"enables at {event.enable_ns:.4f} ns, settles at "
            f"{event.settle_ns:.4f} ns")
    lines.append("")
    lines.append(
        f"{'corner':<16} {'wake(ns)':>9} {'rush(mA)':>9} "
        f"{'E/cyc(pJ)':>10} {'dP(nW)':>9} {'break-even(ns)':>15}")
    for row in result.corner_rows:
        saved = row.active_leakage_nw - row.sleep_leakage_nw
        lines.append(
            f"{row.corner:<16} {row.wake_latency_ns:9.4f} "
            f"{row.peak_rush_ma:9.3f} {row.cycle_energy_pj:10.4f} "
            f"{saved:9.3f} {_fmt_ns(row.break_even_ns):>15}")
    lines.append("")
    lines.append(
        f"{'scenario':<16} {'corner':<16} {'events':>10} "
        f"{'net(pJ)':>12} {'of active':>10} {'sleep?':>7}")
    for outcome in result.outcomes:
        lines.append(
            f"{outcome.scenario:<16} {outcome.corner:<16} "
            f"{outcome.sleep_events:10.1f} "
            f"{outcome.net_savings_pj:12.2f} "
            f"{100.0 * outcome.savings_fraction:9.2f}% "
            f"{'yes' if outcome.worthwhile else 'no':>7}")
    return "\n".join(lines)
