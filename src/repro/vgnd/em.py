"""Electromigration checks on the VGND network.

Two rules (both named in §3 of the paper):

* the sustained current through a switch must not exceed its width-
  proportional EM rating;
* the number of MT-cells sharing one switch must not exceed the
  configured cap.
"""

from __future__ import annotations

import dataclasses

from repro.liberty.library import Library
from repro.vgnd.network import VgndNetwork


@dataclasses.dataclass
class EmViolation:
    """One electromigration rule violation."""

    cluster_index: int
    rule: str           # "current" or "cell_count"
    value: float
    limit: float

    def render(self) -> str:
        return (f"cluster {self.cluster_index}: {self.rule} = "
                f"{self.value:.3f} exceeds limit {self.limit:.3f}")


def check_em(network: VgndNetwork, library: Library,
             max_cells_per_switch: int) -> list[EmViolation]:
    """All EM violations in the network (empty list = clean)."""
    tech = library.tech
    violations: list[EmViolation] = []
    for cluster in network.clusters:
        if cluster.size > max_cells_per_switch:
            violations.append(EmViolation(
                cluster_index=cluster.index, rule="cell_count",
                value=float(cluster.size),
                limit=float(max_cells_per_switch)))
        if cluster.switch_cell is None:
            continue
        width = library.cell(cluster.switch_cell).switch_width_um
        em_limit = tech.em_current_per_um * width
        if cluster.current_ma > em_limit:
            violations.append(EmViolation(
                cluster_index=cluster.index, rule="current",
                value=cluster.current_ma, limit=em_limit))
    return violations
