"""MT-cell clustering for shared switch transistors.

Placement-driven greedy clustering with the three §3 constraints:

* **VGND wire length cap** — "the switch transistor structure is
  constructed so that the wire length of each VGND line may not exceed
  an upper limit, as a long VGND line tends to suffer from the
  crosstalk";
* **cells-per-switch cap** — "the number of MT-cells which share the
  same switch transistor is also cared, to prevent the
  electro-migration";
* **bounce feasibility** — a cluster must be sizeable: even the largest
  discrete switch must hold the bounce under the limit.

Cells are swept row band by row band in x order and packed greedily;
a merge pass then joins neighbouring under-full clusters while all
constraints still hold, minimizing switch count.
"""

from __future__ import annotations

import dataclasses
import statistics

from repro.device.mosfet import MosfetModel
from repro.errors import ConfigError, VgndError
from repro.liberty.library import Library
from repro.netlist.core import Netlist
from repro.placement.placer import Placement
from repro.vgnd.bounce import (
    SIMULTANEITY_EXPONENT,
    SIMULTANEITY_FLOOR,
    cluster_bounce,
    cluster_current,
    rail_resistance_far,
)
from repro.vgnd.network import VgndCluster, VgndNetwork


@dataclasses.dataclass(frozen=True)
class ClusterConfig:
    """User-visible knobs of the switch-structure optimizer."""

    bounce_limit_v: float = 0.06          # 5% of a 1.2 V supply
    max_rail_length_um: float = 400.0     # crosstalk cap
    max_cells_per_switch: int = 64        # EM cap
    row_band_height_um: float | None = None   # defaults to 2 rows
    # Simultaneity model of the cluster current: the fraction of the
    # summed member peak current flowing at once is
    # max(n^-exponent, floor).
    simultaneity_exponent: float = SIMULTANEITY_EXPONENT
    simultaneity_floor: float = SIMULTANEITY_FLOOR

    def __post_init__(self):
        if self.bounce_limit_v <= 0:
            raise VgndError("bounce limit must be positive")
        if self.max_rail_length_um <= 0:
            raise VgndError("rail length cap must be positive")
        if self.max_cells_per_switch < 1:
            raise VgndError("cells-per-switch cap must be at least 1")
        if not 0.0 <= self.simultaneity_exponent <= 1.0:
            raise ConfigError(
                "simultaneity_exponent",
                f"must be in [0, 1], got {self.simultaneity_exponent!r}")
        if not 0.0 < self.simultaneity_floor <= 1.0:
            raise ConfigError(
                "simultaneity_floor",
                f"must be in (0, 1], got {self.simultaneity_floor!r}")


class MtClusterer:
    """Builds the cluster set for a placed netlist's MT-cells."""

    def __init__(self, netlist: Netlist, library: Library,
                 placement: Placement,
                 config: ClusterConfig | None = None):
        self.netlist = netlist
        self.library = library
        self.placement = placement
        self.config = config or ClusterConfig()
        tech = library.tech
        self._band_height = (self.config.row_band_height_um
                             or 2.0 * tech.row_height)
        # Ron of the largest available switch (feasibility floor).
        switches = library.switch_cells()
        if not switches:
            raise VgndError("library has no switch cells")
        model = MosfetModel(tech, tech.vth_high, "nmos")
        self._largest_ron = model.on_resistance(
            switches[-1].switch_width_um)

    # --- public -------------------------------------------------------------

    def build(self, mt_instance_names: list[str]) -> VgndNetwork:
        """Cluster the given MT instances into a VGND network."""
        network = VgndNetwork(bounce_limit_v=self.config.bounce_limit_v)
        if not mt_instance_names:
            return network
        bands = self._band_assignment(mt_instance_names)
        clusters: list[list[str]] = []
        for band_index in sorted(bands):
            ordered = sorted(
                bands[band_index],
                key=lambda n: self.placement.location(n)[0])
            clusters.extend(self._pack_band(ordered))
        clusters = self._merge_pass(clusters)
        for index, members in enumerate(clusters):
            network.clusters.append(self._make_cluster(index, members))
        return network

    # --- internals -----------------------------------------------------------

    def _band_assignment(self, names: list[str]) -> dict[int, list[str]]:
        bands: dict[int, list[str]] = {}
        for name in names:
            _x, y = self.placement.location(name)
            band = int(y / self._band_height)
            bands.setdefault(band, []).append(name)
        return bands

    def _pack_band(self, ordered: list[str]) -> list[list[str]]:
        """Greedy left-to-right packing of one row band."""
        clusters: list[list[str]] = []
        current: list[str] = []
        for name in ordered:
            candidate = current + [name]
            if current and not self._feasible(candidate):
                clusters.append(current)
                current = [name]
            else:
                current = candidate
        if current:
            clusters.append(current)
        return clusters

    def _merge_pass(self, clusters: list[list[str]]) -> list[list[str]]:
        """Merge neighbouring clusters while constraints hold."""
        merged = True
        while merged:
            merged = False
            clusters.sort(key=lambda c: self._centroid(c))
            result: list[list[str]] = []
            i = 0
            while i < len(clusters):
                if i + 1 < len(clusters):
                    candidate = clusters[i] + clusters[i + 1]
                    if self._feasible(candidate):
                        result.append(candidate)
                        i += 2
                        merged = True
                        continue
                result.append(clusters[i])
                i += 1
            clusters = result
        return clusters

    def _centroid(self, members: list[str]) -> tuple[float, float]:
        xs = []
        ys = []
        for name in members:
            x, y = self.placement.location(name)
            xs.append(x)
            ys.append(y)
        return statistics.fmean(ys), statistics.fmean(xs)

    def _rail_length(self, members: list[str]) -> float:
        """Estimated VGND rail length for a member set.

        Bounding-box half-perimeter scaled by the multi-pin tree factor
        (a k-point rectilinear tree is ~0.53*sqrt(k) times its bbox
        half-perimeter), matching what post-route extraction measures.
        """
        xs = []
        ys = []
        for name in members:
            x, y = self.placement.location(name)
            xs.append(x)
            ys.append(y)
        hpwl = (max(xs) - min(xs)) + (max(ys) - min(ys))
        factor = max(1.0, 0.53 * (len(members) + 1) ** 0.5)
        return hpwl * factor

    def _feasible(self, members: list[str]) -> bool:
        config = self.config
        if len(members) > config.max_cells_per_switch:
            return False
        rail = self._rail_length(members)
        if rail > config.max_rail_length_um:
            return False
        # Even the largest switch must keep the bounce legal.
        current = self._cluster_current(members)
        rail_res = rail_resistance_far(rail, self.library.tech)
        bounce = cluster_bounce(current, self._largest_ron, rail_res)
        return bounce <= config.bounce_limit_v

    def _cluster_current(self, members: list[str]) -> float:
        return cluster_current(
            members, self.netlist, self.library,
            exponent=self.config.simultaneity_exponent,
            floor=self.config.simultaneity_floor)

    def _make_cluster(self, index: int, members: list[str]) -> VgndCluster:
        xs = []
        ys = []
        for name in members:
            x, y = self.placement.location(name)
            xs.append(x)
            ys.append(y)
        return VgndCluster(
            index=index,
            members=list(members),
            net_name=f"vgnd_{index}",
            centroid=(statistics.fmean(xs), statistics.fmean(ys)),
            rail_length_um=self._rail_length(members),
            current_ma=self._cluster_current(members),
        )
