"""Discrete switch transistor sizing.

Given a cluster's simultaneous current and rail resistance, the sizer
selects the smallest library switch cell whose on-resistance keeps the
VGND bounce below the limit *and* whose electromigration rating covers
the current.  Re-optimization after routing repeats the selection with
extracted rail lengths — the step Fig. 4 performs on SPEF data.
"""

from __future__ import annotations

import dataclasses

from repro.device.mosfet import MosfetModel
from repro.errors import SizingError
from repro.liberty.library import CellDef, Library
from repro.vgnd.bounce import cluster_bounce, rail_resistance_far
from repro.vgnd.network import VgndCluster, VgndNetwork


@dataclasses.dataclass
class SizingOutcome:
    """Summary of one sizing pass."""

    resized_clusters: int
    total_switch_width_um: float
    worst_bounce_v: float
    unsizeable_clusters: list[int] = dataclasses.field(default_factory=list)


class SwitchSizer:
    """Selects discrete switch cells for VGND clusters."""

    def __init__(self, library: Library, bounce_limit_v: float,
                 safety_factor: float = 1.0):
        if bounce_limit_v <= 0:
            raise SizingError("bounce limit must be positive")
        self.library = library
        self.tech = library.tech
        self.bounce_limit_v = bounce_limit_v
        self.safety_factor = safety_factor
        self._switches = library.switch_cells()
        if not self._switches:
            raise SizingError("library has no switch cells")
        self._model = MosfetModel(self.tech, self.tech.vth_high, "nmos")

    def ron(self, switch: CellDef) -> float:
        return self._model.on_resistance(switch.switch_width_um)

    def em_limit_ma(self, switch: CellDef) -> float:
        return self.tech.em_current_per_um * switch.switch_width_um

    def select(self, current_ma: float, rail_length_um: float) -> CellDef:
        """Smallest switch meeting bounce and EM for this cluster."""
        rail_res = rail_resistance_far(rail_length_um, self.tech)
        demand = current_ma * self.safety_factor
        for switch in self._switches:
            if self.em_limit_ma(switch) < demand:
                continue
            bounce = cluster_bounce(demand, self.ron(switch), rail_res)
            if bounce <= self.bounce_limit_v:
                return switch
        largest = self._switches[-1]
        bounce = cluster_bounce(demand, self.ron(largest), rail_res)
        raise SizingError(
            f"no switch meets bounce {self.bounce_limit_v:.3f} V for "
            f"current {current_ma:.3f} mA over rail {rail_length_um:.0f} um "
            f"(largest gives {bounce:.3f} V)")

    def size_cluster(self, cluster: VgndCluster) -> CellDef:
        """Select and record the switch for one cluster."""
        switch = self.select(cluster.current_ma, cluster.rail_length_um)
        cluster.switch_cell = switch.name
        rail_res = rail_resistance_far(cluster.rail_length_um, self.tech)
        cluster.bounce_v = cluster_bounce(
            cluster.current_ma * self.safety_factor,
            self.ron(switch), rail_res)
        return switch

    def size_network(self, network: VgndNetwork,
                     strict: bool = True) -> SizingOutcome:
        """Size every cluster; returns the pass summary.

        With ``strict=False`` unsizeable clusters are recorded in the
        outcome instead of raising (the flow then splits them — the
        structural half of the post-route re-optimization).
        """
        resized = 0
        unsizeable: list[int] = []
        for cluster in network.clusters:
            before = cluster.switch_cell
            try:
                self.size_cluster(cluster)
            except SizingError:
                if strict:
                    raise
                unsizeable.append(cluster.index)
                continue
            if cluster.switch_cell != before:
                resized += 1
        return SizingOutcome(
            resized_clusters=resized,
            total_switch_width_um=network.total_switch_width(self.library),
            worst_bounce_v=network.worst_bounce_v(),
            unsizeable_clusters=unsizeable)

    def reoptimize(self, network: VgndNetwork,
                   measured_rail_lengths: dict[int, float],
                   strict: bool = False) -> SizingOutcome:
        """Re-size with post-route rail lengths (the SPEF step).

        ``measured_rail_lengths`` maps cluster index to the extracted
        VGND rail length.  Clusters whose estimate was pessimistic may
        shrink their switch; optimistic ones grow it; clusters that no
        switch can serve are reported for splitting.
        """
        for cluster in network.clusters:
            if cluster.index in measured_rail_lengths:
                cluster.rail_length_um = measured_rail_lengths[cluster.index]
        return self.size_network(network, strict=strict)
