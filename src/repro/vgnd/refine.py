"""Structural refinement of the VGND network.

The post-route re-optimization is not only a sizing adjustment: when
extracted rail lengths show a cluster that no discrete switch can hold
under the bounce limit, the structure itself must change.
:func:`split_cluster` divides such a cluster along its longer placement
axis into two clusters, rewires the member VGND pins onto fresh rails,
inserts and places the new switches, and sizes them.
"""

from __future__ import annotations

import statistics

from repro.errors import VgndError
from repro.liberty.library import Library
from repro.netlist.core import Netlist, PinDirection
from repro.placement.placer import Placement, place_incremental
from repro.vgnd.bounce import (
    SIMULTANEITY_EXPONENT,
    SIMULTANEITY_FLOOR,
    cluster_current,
)
from repro.vgnd.network import VgndCluster, VgndNetwork
from repro.vgnd.sizing import SwitchSizer


def split_cluster(netlist: Netlist, library: Library, placement: Placement,
                  network: VgndNetwork, cluster: VgndCluster,
                  mte_net_name: str = "MTE",
                  simultaneity_exponent: float = SIMULTANEITY_EXPONENT,
                  simultaneity_floor: float = SIMULTANEITY_FLOOR
                  ) -> tuple[VgndCluster, VgndCluster]:
    """Split one cluster in two along its longer placement axis.

    The original cluster keeps its index and one half of the members;
    the second half becomes a new cluster appended to the network.
    Both halves get fresh switch instances (unsized — callers run the
    sizer afterwards).  The simultaneity overrides must match the ones
    the clusterer used, or the halves would be rebuilt under a
    different current model than the designer configured.
    """
    if cluster.size < 2:
        raise VgndError(
            f"cluster {cluster.index} has {cluster.size} member(s); "
            f"cannot split")
    points = {name: placement.location(name) for name in cluster.members}
    xs = [p[0] for p in points.values()]
    ys = [p[1] for p in points.values()]
    axis = 0 if (max(xs) - min(xs)) >= (max(ys) - min(ys)) else 1
    ordered = sorted(cluster.members, key=lambda n: points[n][axis])
    half = len(ordered) // 2
    first_members = ordered[:half]
    second_members = ordered[half:]

    _teardown_cluster(netlist, placement, cluster)

    new_index = max(c.index for c in network.clusters) + 1
    first = _build_cluster(netlist, library, placement, cluster.index,
                           first_members, mte_net_name,
                           simultaneity_exponent, simultaneity_floor)
    second = _build_cluster(netlist, library, placement, new_index,
                            second_members, mte_net_name,
                            simultaneity_exponent, simultaneity_floor)
    network.clusters[network.clusters.index(cluster)] = first
    network.clusters.append(second)
    return first, second


def _teardown_cluster(netlist: Netlist, placement: Placement,
                      cluster: VgndCluster):
    """Disconnect members and remove the cluster's switch and rail."""
    for member in cluster.members:
        inst = netlist.instances.get(member)
        if inst is None:
            continue
        pin = inst.pins.get("VGND")
        if pin is not None and pin.net is not None:
            netlist.disconnect(pin)
    if cluster.switch_instance \
            and cluster.switch_instance in netlist.instances:
        netlist.remove_instance(cluster.switch_instance)
        placement.locations.pop(cluster.switch_instance, None)
    old_net = netlist.nets.get(cluster.net_name)
    if old_net is not None:
        netlist.remove_net_if_dangling(old_net)


def _rail_length(placement: Placement, members: list[str]) -> float:
    xs = []
    ys = []
    for name in members:
        x, y = placement.location(name)
        xs.append(x)
        ys.append(y)
    hpwl = (max(xs) - min(xs)) + (max(ys) - min(ys))
    return hpwl * max(1.0, 0.53 * (len(members) + 1) ** 0.5)


def _build_cluster(netlist: Netlist, library: Library, placement: Placement,
                   index: int, members: list[str], mte_net_name: str,
                   simultaneity_exponent: float = SIMULTANEITY_EXPONENT,
                   simultaneity_floor: float = SIMULTANEITY_FLOOR
                   ) -> VgndCluster:
    """Create rail net, switch instance and cluster record (unsized)."""
    xs = []
    ys = []
    for name in members:
        x, y = placement.location(name)
        xs.append(x)
        ys.append(y)
    cluster = VgndCluster(
        index=index,
        members=list(members),
        net_name=f"vgnd_{index}",
        centroid=(statistics.fmean(xs), statistics.fmean(ys)),
        rail_length_um=_rail_length(placement, members),
        current_ma=cluster_current(members, netlist, library,
                                   exponent=simultaneity_exponent,
                                   floor=simultaneity_floor),
    )
    vgnd_net = netlist.get_or_create_net(cluster.net_name)
    mte_net = netlist.get_or_create_net(mte_net_name)
    switches = library.switch_cells()
    switch_name = netlist.unique_name(f"vgnd_switch_{index}")
    inst = netlist.add_instance(switch_name, switches[0].name)
    netlist.connect(inst, "VGND", vgnd_net, PinDirection.INOUT, keeper=True)
    netlist.connect(inst, "MTE", mte_net, PinDirection.INPUT)
    cluster.switch_instance = switch_name
    place_incremental(placement, netlist, library, switch_name,
                      cluster.centroid)
    for member in members:
        mt_inst = netlist.instances[member]
        pin = mt_inst.pins.get("VGND")
        if pin is not None:
            if pin.net is not None:
                netlist.disconnect(pin)
            netlist.connect(mt_inst, "VGND", vgnd_net,
                            PinDirection.INOUT, keeper=True)
    return cluster


def repair_unsizeable(netlist: Netlist, library: Library,
                      placement: Placement, network: VgndNetwork,
                      sizer: SwitchSizer, unsizeable: list[int],
                      mte_net_name: str = "MTE",
                      max_passes: int = 6,
                      simultaneity_exponent: float = SIMULTANEITY_EXPONENT,
                      simultaneity_floor: float = SIMULTANEITY_FLOOR
                      ) -> int:
    """Split clusters until every one can be sized; returns split count.

    Raises :class:`~repro.errors.VgndError` if a single-member cluster
    still cannot be sized (the bounce limit is physically unreachable).
    """
    splits = 0
    pending = list(unsizeable)
    for _ in range(max_passes):
        if not pending:
            break
        next_pending: list[int] = []
        for index in pending:
            cluster = next((c for c in network.clusters
                            if c.index == index), None)
            if cluster is None:
                continue
            if cluster.size < 2:
                raise VgndError(
                    f"cluster {index} is a single cell and still cannot "
                    f"meet the bounce limit")
            first, second = split_cluster(
                netlist, library, placement, network, cluster,
                mte_net_name, simultaneity_exponent, simultaneity_floor)
            splits += 1
            for half in (first, second):
                try:
                    sizer.size_cluster(half)
                except Exception:
                    next_pending.append(half.index)
        pending = next_pending
    if pending:
        raise VgndError(f"clusters {pending} remain unsizeable after "
                        f"{max_passes} split passes")
    return splits
