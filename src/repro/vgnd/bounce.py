"""Virtual-ground voltage bounce analysis.

The bounce on a cluster's VGND line is the worst-case voltage developed
across the switch transistor's on-resistance plus the rail resistance
to the farthest member::

    V_bounce = I_cluster * (Ron_switch + R_rail_far)

``I_cluster`` is the simultaneity-discounted sum of member switching
currents: cells in a cluster do not all draw their peak current in the
same instant, which is precisely the averaging the shared-switch
approach exploits (and the per-cell embedded switch of the conventional
MT-cell cannot).
"""

from __future__ import annotations

from repro.device.mosfet import MosfetModel
from repro.device.process import Technology
from repro.liberty.library import Library
from repro.netlist.core import Netlist

#: Simultaneity model: factor = max(n^-EXPONENT, FLOOR).
SIMULTANEITY_EXPONENT = 0.5
SIMULTANEITY_FLOOR = 0.25


def simultaneity_factor(member_count: int,
                        exponent: float = SIMULTANEITY_EXPONENT,
                        floor: float = SIMULTANEITY_FLOOR) -> float:
    """Fraction of summed peak current that flows simultaneously."""
    if member_count <= 0:
        return 0.0
    if member_count == 1:
        return 1.0
    return max(member_count ** (-exponent), floor)


def cluster_current(member_names: list[str], netlist: Netlist,
                    library: Library,
                    exponent: float = SIMULTANEITY_EXPONENT,
                    floor: float = SIMULTANEITY_FLOOR) -> float:
    """Worst-case simultaneous VGND current of a cluster (mA)."""
    total = 0.0
    for name in member_names:
        inst = netlist.instances.get(name)
        if inst is None or inst.cell_name not in library:
            continue
        total += library.cell(inst.cell_name).switching_current_ma
    return total * simultaneity_factor(len(member_names), exponent, floor)


def rail_resistance_far(rail_length_um: float, tech: Technology) -> float:
    """Resistance from the switch tap to the farthest member (kOhm).

    The switch sits near the rail midpoint, so the farthest member is
    roughly half the rail away.
    """
    return 0.5 * rail_length_um * tech.vgnd_res_per_um


def switch_on_resistance(library: Library, switch_cell_name: str) -> float:
    """Linear-region Ron of a library switch cell (kOhm)."""
    cell = library.cell(switch_cell_name)
    tech = library.tech
    model = MosfetModel(tech, tech.vth_high, "nmos")
    return model.on_resistance(cell.switch_width_um)


def cluster_bounce(current_ma: float, ron_kohm: float,
                   rail_res_far_kohm: float) -> float:
    """VGND voltage bounce in volts (mA x kOhm = V)."""
    return current_ma * (ron_kohm + rail_res_far_kohm)
