"""Virtual-ground network optimizer (the CoolPower(TM) substitute).

The improved Selective-MT flow delegates switch-transistor structure
construction to a back-end optimizer; §3 of the paper specifies its
constraints, all implemented here:

* clusters of MT-cells share one switch transistor
  (:mod:`repro.vgnd.cluster`);
* each switch is sized so the VGND voltage bounce stays below the
  designer's limit (:mod:`repro.vgnd.bounce`,
  :mod:`repro.vgnd.sizing`);
* VGND wire length per cluster is capped (crosstalk);
* cells per switch are capped (electromigration,
  :mod:`repro.vgnd.em`);
* after routing, switch sizes are re-optimized against extracted RC.
"""

from repro.vgnd.bounce import cluster_bounce, cluster_current
from repro.vgnd.cluster import ClusterConfig, MtClusterer
from repro.vgnd.em import check_em
from repro.vgnd.network import VgndCluster, VgndNetwork
from repro.vgnd.sizing import SwitchSizer

__all__ = [
    "cluster_bounce",
    "cluster_current",
    "ClusterConfig",
    "MtClusterer",
    "check_em",
    "VgndCluster",
    "VgndNetwork",
    "SwitchSizer",
]
