"""Virtual-ground network model.

A :class:`VgndNetwork` is the set of :class:`VgndCluster` objects built
by the clusterer: each cluster owns a VGND net, the MT-cells riding on
it, and (after sizing) a switch instance of a discrete size.
"""

from __future__ import annotations

import dataclasses

from repro.liberty.library import Library
from repro.netlist.core import Netlist


@dataclasses.dataclass
class VgndCluster:
    """One shared-switch cluster."""

    index: int
    members: list[str]                    # MT instance names
    net_name: str                         # VGND net
    centroid: tuple[float, float] = (0.0, 0.0)
    rail_length_um: float = 0.0           # estimated or extracted
    switch_instance: str | None = None
    switch_cell: str | None = None
    current_ma: float = 0.0
    bounce_v: float = 0.0

    @property
    def size(self) -> int:
        return len(self.members)


@dataclasses.dataclass
class VgndNetwork:
    """All clusters of one design plus roll-up statistics."""

    clusters: list[VgndCluster] = dataclasses.field(default_factory=list)
    bounce_limit_v: float = 0.0

    def cluster_of(self, inst_name: str) -> VgndCluster | None:
        for cluster in self.clusters:
            if inst_name in cluster.members:
                return cluster
        return None

    @property
    def mt_cell_count(self) -> int:
        return sum(c.size for c in self.clusters)

    @property
    def switch_count(self) -> int:
        return sum(1 for c in self.clusters if c.switch_instance)

    def total_switch_width(self, library: Library) -> float:
        total = 0.0
        for cluster in self.clusters:
            if cluster.switch_cell:
                total += library.cell(cluster.switch_cell).switch_width_um
        return total

    def total_switch_area(self, library: Library) -> float:
        total = 0.0
        for cluster in self.clusters:
            if cluster.switch_cell:
                total += library.cell(cluster.switch_cell).area
        return total

    def total_switch_leakage_nw(self, library: Library) -> float:
        total = 0.0
        for cluster in self.clusters:
            if cluster.switch_cell:
                total += library.cell(cluster.switch_cell).default_leakage_nw
        return total

    def worst_bounce_v(self) -> float:
        return max((c.bounce_v for c in self.clusters), default=0.0)

    def bounce_ok(self) -> bool:
        return self.worst_bounce_v() <= self.bounce_limit_v + 1e-12

    def summary(self) -> dict[str, float]:
        sizes = [c.size for c in self.clusters]
        return {
            "clusters": len(self.clusters),
            "mt_cells": self.mt_cell_count,
            "avg_cluster_size": (sum(sizes) / len(sizes)) if sizes else 0.0,
            "max_cluster_size": max(sizes, default=0),
            "worst_bounce_v": self.worst_bounce_v(),
            "bounce_limit_v": self.bounce_limit_v,
        }

    def derates(self, netlist: Netlist, library: Library,
                assumed_bounce_v: float,
                droop_factor: float = 0.5) -> dict[str, float]:
        """Per-instance STA derates: actual vs characterized bounce.

        The MT library tables were characterized assuming an average
        droop of ``assumed_bounce_v``; a cluster whose sized worst-case
        bounce implies a different average droop (``droop_factor`` x
        worst case) gets a delay derate so STA sees the true
        virtual-ground behaviour.
        """
        tech = library.tech
        derate_map: dict[str, float] = {}
        od = tech.overdrive(tech.vth_low)
        assumed_factor = (od / max(od - assumed_bounce_v, 1e-3)) ** tech.alpha
        for cluster in self.clusters:
            droop = droop_factor * cluster.bounce_v
            actual_factor = (od / max(od - droop, 1e-3)) ** tech.alpha
            ratio = actual_factor / assumed_factor
            for member in cluster.members:
                derate_map[member] = ratio
        return derate_map
