"""Equivalence checking between two netlists.

The paper states that the conventional (Fig. 2) and improved (Fig. 3)
Selective-MT circuits "are equivalent".  :func:`check_equivalence`
verifies this for our constructions: both netlists are simulated in
active mode over the same stimulus (exhaustive when the input count is
small, seeded-random otherwise) and primary outputs plus flip-flop
next-state functions are compared.

Both designs must expose the same primary input/output port names
(ignoring the flow-added MTE input) and the same flip-flop instance
names — which holds for all flow transforms, since they swap variants
and attach switches/holders without renaming logic.
"""

from __future__ import annotations

import dataclasses

from repro.errors import EquivalenceError
from repro.liberty.library import Library
from repro.netlist.core import Netlist
from repro.sim.logic import Simulator
from repro.sim.vectors import exhaustive_vectors, random_vectors

#: Ports that the flow adds and equivalence should ignore.
_CONTROL_PORTS = {"MTE", "CLK"}

#: Input-count threshold below which checking is exhaustive.
EXHAUSTIVE_LIMIT = 12


@dataclasses.dataclass
class EquivalenceReport:
    """Result of an equivalence check."""

    equivalent: bool
    vectors_checked: int
    exhaustive: bool
    mismatches: list[str]

    def __bool__(self) -> bool:
        return self.equivalent


def _data_inputs(netlist: Netlist) -> list[str]:
    return sorted(p.name for p in netlist.input_ports()
                  if p.name not in _CONTROL_PORTS)


def check_equivalence(golden: Netlist, revised: Netlist, library: Library,
                      max_random_vectors: int = 256, seed: int = 2005,
                      raise_on_mismatch: bool = False) -> EquivalenceReport:
    """Compare two netlists in active mode.

    Returns an :class:`EquivalenceReport`; optionally raises
    :class:`~repro.errors.EquivalenceError` on the first mismatch.
    """
    golden_inputs = _data_inputs(golden)
    revised_inputs = _data_inputs(revised)
    if golden_inputs != revised_inputs:
        raise EquivalenceError(
            f"input port sets differ: {golden_inputs} vs {revised_inputs}")
    golden_outputs = sorted(p.name for p in golden.output_ports())
    revised_outputs = sorted(p.name for p in revised.output_ports())
    if golden_outputs != revised_outputs:
        raise EquivalenceError(
            f"output port sets differ: {golden_outputs} vs {revised_outputs}")

    sim_golden = Simulator(golden, library)
    sim_revised = Simulator(revised, library)
    golden_ffs = sorted(inst.name for inst in sim_golden.flip_flops())
    revised_ffs = sorted(inst.name for inst in sim_revised.flip_flops())
    if golden_ffs != revised_ffs:
        raise EquivalenceError(
            f"flip-flop sets differ: {len(golden_ffs)} vs "
            f"{len(revised_ffs)} instances")

    exhaustive = len(golden_inputs) <= EXHAUSTIVE_LIMIT
    if exhaustive:
        vectors = list(exhaustive_vectors(golden_inputs))
    else:
        vectors = list(random_vectors(golden_inputs, max_random_vectors,
                                      seed=seed))

    mismatches: list[str] = []
    # FF state is also randomized alongside inputs for sequential cones.
    state_vectors = (list(random_vectors(golden_ffs, len(vectors),
                                         seed=seed + 1))
                     if golden_ffs else [{}] * len(vectors))

    for vector, state in zip(vectors, state_vectors):
        result_golden = sim_golden.evaluate(vector, state)
        result_revised = sim_revised.evaluate(vector, state)
        for port in golden_outputs:
            got_g = result_golden.output_values[port]
            got_r = result_revised.output_values[port]
            if got_g != got_r:
                mismatches.append(
                    f"output {port}: {got_g} vs {got_r} under {vector}")
        for ff in golden_ffs:
            got_g = result_golden.next_state[ff]
            got_r = result_revised.next_state[ff]
            if got_g != got_r:
                mismatches.append(
                    f"ff {ff} next-state: {got_g} vs {got_r} under {vector}")
        if mismatches and raise_on_mismatch:
            raise EquivalenceError(mismatches[0])
        if len(mismatches) > 20:
            break

    return EquivalenceReport(
        equivalent=not mismatches,
        vectors_checked=len(vectors),
        exhaustive=exhaustive,
        mismatches=mismatches)
