"""Stimulus generation for simulation and equivalence checking."""

from __future__ import annotations

import itertools
import random
from typing import Iterator, Sequence


def exhaustive_vectors(port_names: Sequence[str]) -> Iterator[dict[str, int]]:
    """All 2^n input vectors over the given ports (sorted for stability)."""
    names = list(port_names)
    for bits in itertools.product((0, 1), repeat=len(names)):
        yield dict(zip(names, bits))


def random_vectors(port_names: Sequence[str], count: int,
                   seed: int = 0) -> Iterator[dict[str, int]]:
    """``count`` seeded random vectors over the given ports."""
    rng = random.Random(seed)
    names = list(port_names)
    for _ in range(count):
        yield {name: rng.randint(0, 1) for name in names}


def walking_ones(port_names: Sequence[str]) -> Iterator[dict[str, int]]:
    """All-zero background with a single one walking across the ports."""
    names = list(port_names)
    yield {name: 0 for name in names}
    for hot in names:
        yield {name: int(name == hot) for name in names}
    yield {name: 1 for name in names}
