"""Four-valued levelized logic simulator with standby semantics.

Values: ``0``, ``1``, ``UNKNOWN`` ('x') and ``FLOATING`` ('z').

Active mode (MTE = 1): every cell evaluates its Liberty function; MT
variants behave identically to their LVT siblings (the virtual ground
is connected through the switch).

Standby mode (MTE = 0), following §2 of the paper:

* improved MT-cells (``MT``/``MTV`` variants) lose their ground — their
  outputs float (Z);
* a conventional MT-cell's *embedded* output holder forces its output
  to logic one;
* an external ``HOLDER_X1`` on a net forces that net to logic one
  (overriding a floating driver);
* LVT/HVT cells keep evaluating, with floating inputs treated as X —
  this is exactly the "unexpected power dissipation" hazard the output
  holder exists to prevent, and the holder-insertion rule is validated
  by checking no powered cell sees a floating input in standby.

Flip-flops hold externally supplied state; the simulator returns the
next state captured from each FF's D input so sequential behaviour can
be stepped.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping

from repro.errors import ReproError
from repro.liberty.library import CellKind, Library
from repro.liberty.function import X as UNKNOWN
from repro.netlist.core import Instance, Netlist

ZERO = 0
ONE = 1
FLOATING = "z"

LogicValue = object  # 0 | 1 | "x" | "z"


@dataclasses.dataclass
class SimResult:
    """Outcome of one combinational evaluation."""

    net_values: dict[str, LogicValue]
    output_values: dict[str, LogicValue]
    next_state: dict[str, LogicValue]
    floating_input_pins: list[str]

    def value(self, net_name: str) -> LogicValue:
        return self.net_values[net_name]


class Simulator:
    """Levelized simulator bound to one netlist + library."""

    def __init__(self, netlist: Netlist, library: Library):
        self.netlist = netlist
        self.library = library
        self._is_seq = lambda inst: (
            inst.cell_name in library
            and library.cell(inst.cell_name).is_sequential)
        self._order = netlist.topological_order(self._is_seq)

    def flip_flops(self) -> list[Instance]:
        """All sequential instances in the design."""
        return [inst for inst in self.netlist.instances.values()
                if self._is_seq(inst)]

    def evaluate(self, inputs: Mapping[str, LogicValue],
                 state: Mapping[str, LogicValue] | None = None,
                 standby: bool = False) -> SimResult:
        """One combinational evaluation pass.

        Parameters
        ----------
        inputs:
            Values per primary input port name.  Missing ports default
            to X.  The MTE port, if present, is overridden by
            ``standby``.
        state:
            Values per flip-flop instance name (the Q output value).
        standby:
            When True the sleep signal is low (MTE = 0).
        """
        state = state or {}
        net_values: dict[str, LogicValue] = {}
        floating_pins: list[str] = []

        # Primary inputs.
        for port in self.netlist.input_ports():
            value = inputs.get(port.name, UNKNOWN)
            if port.name == "MTE":
                value = ZERO if standby else ONE
            net_values[port.net.name] = _coerce(value)

        # Flip-flop outputs come from supplied state.
        for inst in self.flip_flops():
            q_pin = inst.pins.get("Q")
            if q_pin is not None and q_pin.net is not None:
                net_values[q_pin.net.name] = _coerce(
                    state.get(inst.name, UNKNOWN))

        # Combinational evaluation in topological order.
        for inst in self._order:
            if self._is_seq(inst):
                continue
            cell = self.library.cell(inst.cell_name)
            if cell.kind in (CellKind.SWITCH, CellKind.HOLDER):
                continue  # handled structurally below / no logic output
            env = {}
            has_floating_input = False
            for pin in inst.input_pins():
                if pin.name == "MTE":
                    continue
                value = net_values.get(pin.net.name, UNKNOWN) \
                    if pin.net is not None else UNKNOWN
                if value == FLOATING:
                    has_floating_input = True
                    floating_pins.append(pin.full_name)
                    value = UNKNOWN
                env[pin.name] = value
            outputs = cell.evaluate(env)
            for pin in inst.output_pins():
                if pin.net is None:
                    continue
                value = outputs.get(pin.name, UNKNOWN)
                if standby and cell.is_improved_mt:
                    # Ground is cut: the output floats.
                    value = FLOATING
                elif standby and cell.is_conventional_mt:
                    # Embedded output holder forces logic one.
                    value = ONE
                net_values[pin.net.name] = value
            del has_floating_input  # recorded above; evaluation continues

        # External output holders force held nets to one in standby.
        if standby:
            for inst in self.netlist.instances.values():
                cell = self.library.cell(inst.cell_name) \
                    if inst.cell_name in self.library else None
                if cell is None or cell.kind != CellKind.HOLDER:
                    continue
                z_pin = inst.pins.get("Z")
                if z_pin is not None and z_pin.net is not None:
                    net_values[z_pin.net.name] = ONE
            # Re-run powered logic so held values propagate through
            # HVT fanout (one extra pass suffices for holder nets that
            # feed powered logic; holders only source constant 1).
            floating_pins = []
            for inst in self._order:
                if self._is_seq(inst):
                    continue
                cell = self.library.cell(inst.cell_name)
                if cell.kind in (CellKind.SWITCH, CellKind.HOLDER):
                    continue
                if cell.is_improved_mt or cell.is_conventional_mt:
                    continue  # outputs already forced above
                env = {}
                for pin in inst.input_pins():
                    if pin.name == "MTE":
                        continue
                    value = net_values.get(pin.net.name, UNKNOWN) \
                        if pin.net is not None else UNKNOWN
                    if value == FLOATING:
                        floating_pins.append(pin.full_name)
                        value = UNKNOWN
                    env[pin.name] = value
                outputs = cell.evaluate(env)
                for pin in inst.output_pins():
                    if pin.net is not None:
                        net_values[pin.net.name] = outputs.get(
                            pin.name, UNKNOWN)

        # Collect primary outputs and FF next-state.
        output_values = {}
        for port in self.netlist.output_ports():
            output_values[port.name] = net_values.get(
                port.net.name, UNKNOWN) if port.net is not None else UNKNOWN
        next_state = {}
        for inst in self.flip_flops():
            d_pin = inst.pins.get("D")
            if d_pin is not None and d_pin.net is not None:
                next_state[inst.name] = net_values.get(
                    d_pin.net.name, UNKNOWN)
            else:
                next_state[inst.name] = UNKNOWN
        return SimResult(net_values, output_values, next_state,
                         floating_pins)

    def step(self, inputs: Mapping[str, LogicValue],
             state: Mapping[str, LogicValue],
             standby: bool = False) -> tuple[SimResult, dict[str, LogicValue]]:
        """Evaluate and clock once; returns (result, new_state)."""
        result = self.evaluate(inputs, state, standby=standby)
        if standby:
            # Clock is gated in standby: state is retained.
            return result, dict(state)
        return result, dict(result.next_state)


def _coerce(value) -> LogicValue:
    if value in (0, 1):
        return value
    if value in ("0", "1"):
        return int(value)
    if value == FLOATING:
        return FLOATING
    if value in (UNKNOWN, "X"):
        return UNKNOWN
    raise ReproError(f"invalid logic value {value!r}")
