"""Logic simulation and equivalence checking.

* :mod:`repro.sim.logic` — four-valued (0/1/X/Z) levelized simulator
  with Selective-MT standby semantics: when the sleep signal MTE is
  low, MT-cell outputs float (Z) unless an output holder forces them to
  logic one, exactly as §2 of the paper describes.
* :mod:`repro.sim.equivalence` — exhaustive/randomized equivalence
  checking between two netlists (used to verify that the conventional
  (Fig. 2) and improved (Fig. 3) constructions implement the same
  function).
* :mod:`repro.sim.vectors` — seeded stimulus generation.
"""

from repro.sim.logic import SimResult, Simulator, ZERO, ONE, UNKNOWN, FLOATING
from repro.sim.equivalence import check_equivalence, EquivalenceReport
from repro.sim.vectors import random_vectors, exhaustive_vectors

__all__ = [
    "SimResult",
    "Simulator",
    "ZERO",
    "ONE",
    "UNKNOWN",
    "FLOATING",
    "check_equivalence",
    "EquivalenceReport",
    "random_vectors",
    "exhaustive_vectors",
]
