"""repro — Area-efficient Selective Multi-Threshold CMOS methodology.

A from-scratch Python reproduction of Kitahara et al., "Area-efficient
Selective Multi-Threshold CMOS Design Methodology for Standby Leakage
Power Reduction" (DATE 2005), including every substrate the paper's
flow rides on: device models, a multi-Vth Liberty library, netlist
database, logic simulation, STA, placement, routing/extraction, CTS and
the virtual-ground (CoolPower-style) switch optimizer.

Quickstart (the :mod:`repro.api` facade caches all compiled state)::

    from repro.api import Workspace

    ws = Workspace()
    design = ws.design("c880")
    print(design.optimize(technique="improved_smt").leakage_nw)

or, driving the flow engine directly::

    from repro import (build_default_library, load_circuit,
                       SelectiveMtFlow, Technique)

    library = build_default_library()
    netlist = load_circuit("c880")
    flow = SelectiveMtFlow(netlist, library, Technique.IMPROVED_SMT)
    result = flow.run()
    print(result.render_stages())
    print(f"standby leakage: {result.leakage_nw:.1f} nW")
"""

from repro.benchcircuits.suite import available_circuits, load_circuit
from repro.config import FlowConfig, Technique
from repro.core.artifacts import export_design, verify_export
from repro.core.compare import TechniqueComparison, compare_techniques
from repro.core.flow import FlowResult, SelectiveMtFlow
from repro.core.stages import (
    FlowContext,
    Stage,
    StageReport,
    StageRunner,
    build_pipeline,
)
from repro.device.process import DEFAULT_TECHNOLOGY, Technology
from repro.errors import ReproError
from repro.experiments import run_table1, table1_config
from repro.liberty.synth import LibraryBuilder, build_default_library
from repro.netlist.bench_io import parse_bench, parse_bench_file
from repro.netlist.core import Netlist
from repro.netlist.stats import design_stats
from repro.runner import ExperimentRunner, FlowJob, JobOutcome, run_sweep
from repro.timing.constraints import Constraints
from repro.timing.session import TimingSession

__version__ = "1.0.0"

__all__ = [
    "available_circuits",
    "load_circuit",
    "FlowConfig",
    "Technique",
    "export_design",
    "verify_export",
    "TechniqueComparison",
    "compare_techniques",
    "FlowResult",
    "SelectiveMtFlow",
    "FlowContext",
    "Stage",
    "StageReport",
    "StageRunner",
    "build_pipeline",
    "ExperimentRunner",
    "FlowJob",
    "JobOutcome",
    "run_sweep",
    "TimingSession",
    "DEFAULT_TECHNOLOGY",
    "Technology",
    "ReproError",
    "run_table1",
    "table1_config",
    "LibraryBuilder",
    "build_default_library",
    "parse_bench",
    "parse_bench_file",
    "Netlist",
    "design_stats",
    "Constraints",
    "__version__",
]
