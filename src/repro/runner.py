"""Parallel experiment runner.

The paper's evaluation — and the cluster-substrate literature it sits
in — is a grid of (circuit x technique) flow runs.  Each run is
independent and CPU-bound, so :class:`ExperimentRunner` fans
:class:`FlowJob` items out over a process pool while guaranteeing:

* **deterministic results** — every job carries its own seed (the
  placement seed, the flow's only randomness), so a job's outcome is a
  pure function of the job, independent of scheduling or worker count;
* **deterministic ordering** — outcomes are returned in submission
  order regardless of completion order;
* **identical serial/parallel numbers** — ``jobs=1`` executes in
  process through the very same job function, so ``--jobs N`` can be
  raised or lowered without perturbing a single digit (pinned by
  ``tests/test_determinism.py``).

A library passed to the runner is installed in every worker via the
pool initializer (fork or spawn alike); otherwise workers build the
deterministic default library once per process.
"""

from __future__ import annotations

import dataclasses
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from typing import Sequence

from repro.benchcircuits.suite import load_circuit
from repro.config import FlowConfig, Technique
from repro.core.compare import (
    ComparisonRow,
    TechniqueComparison,
    count_cell_kinds,
)
from repro.core.flow import SelectiveMtFlow
from repro.errors import FlowError
from repro.liberty.library import Library
from repro.liberty.synth import build_default_library
from repro.netlist.core import Netlist
from repro.obs import spans as obs_spans

ALL_TECHNIQUES = (Technique.DUAL_VTH, Technique.CONVENTIONAL_SMT,
                  Technique.IMPROVED_SMT)


@dataclasses.dataclass(frozen=True)
class FlowJob:
    """One flow run: a circuit, a technique, a config, a seed."""

    circuit: str
    technique: Technique
    config: FlowConfig = dataclasses.field(default_factory=FlowConfig)
    #: Placement seed override; ``None`` keeps the config's seed.
    seed: int | None = None
    #: In-memory netlist override (pickled to workers); ``circuit``
    #: then only labels the outcome.
    netlist: Netlist | None = None

    def resolved_config(self) -> FlowConfig:
        if self.seed is None:
            return self.config
        return dataclasses.replace(self.config, placement_seed=self.seed)


@dataclasses.dataclass
class JobOutcome:
    """Slim, picklable result of one :class:`FlowJob`."""

    circuit: str
    technique: Technique
    area_um2: float
    leakage_nw: float
    wns: float
    hold_wns: float
    mt_cells: int
    switches: int
    holders: int
    elapsed_s: float
    error: str | None = None
    #: The compute backend the job actually ran on (after the graceful
    #: numpy-missing fallback in the worker process).
    compute_backend: str = "python"
    #: Finished span trees recorded while the job ran (tracing only).
    #: Spans are collected per process, so a pool worker's trees ride
    #: home on the outcome; :class:`ExperimentRunner` grafts them into
    #: the parent trace and clears the field.
    spans: tuple = dataclasses.field(default=(), repr=False,
                                     compare=False)

    @property
    def ok(self) -> bool:
        return self.error is None


_PROCESS_LIBRARY: Library | None = None


def _process_library() -> Library:
    """Per-process default library (deterministic, built at most once)."""
    global _PROCESS_LIBRARY
    if _PROCESS_LIBRARY is None:
        _PROCESS_LIBRARY = build_default_library()
    return _PROCESS_LIBRARY


def _worker_init(library: Library | None, tracing: bool = False):
    """Pool initializer: install the caller's library in the worker.

    Runs once per worker process under both fork and spawn start
    methods, so a caller-supplied (possibly custom) library reaches
    every job and serial/parallel runs stay bit-identical.  When the
    parent traces, the worker traces too (its finished spans ship back
    with each result).
    """
    global _PROCESS_LIBRARY
    _PROCESS_LIBRARY = library
    obs_spans.enable(tracing)


def run_flow_job(job: FlowJob, library: Library | None = None) -> JobOutcome:
    """Execute one job; never raises (errors land in the outcome)."""
    from repro.compute import resolve_backend

    started = time.perf_counter()
    library = library or _process_library()
    backend = "python"
    try:
        config = job.resolved_config()
        backend = resolve_backend(config.compute_backend)
        netlist = job.netlist if job.netlist is not None \
            else load_circuit(job.circuit)
        with obs_spans.span("runner.flow_job", circuit=job.circuit,
                            technique=job.technique.value) as sp:
            flow = SelectiveMtFlow(netlist, library, job.technique,
                                   config)
            result = flow.run()
            sp.set(backend=backend)
        mt, switches, holders = count_cell_kinds(result.netlist, library)
        outcome = JobOutcome(
            circuit=job.circuit,
            technique=job.technique,
            area_um2=result.total_area,
            leakage_nw=result.leakage_nw,
            wns=result.timing.wns,
            hold_wns=result.timing.hold_wns,
            mt_cells=mt, switches=switches, holders=holders,
            elapsed_s=time.perf_counter() - started,
            compute_backend=backend)
    except Exception:
        outcome = JobOutcome(
            circuit=job.circuit, technique=job.technique,
            area_um2=0.0, leakage_nw=0.0, wns=0.0, hold_wns=0.0,
            mt_cells=0, switches=0, holders=0,
            elapsed_s=time.perf_counter() - started,
            error=traceback.format_exc(),
            compute_backend=backend)
    if obs_spans.is_enabled():
        # Stash any finished root spans on the outcome so they survive
        # the pool's pickle boundary; the runner adopts them back into
        # the live trace (serial and pooled runs end up identical).
        outcome.spans = tuple(obs_spans.take_records())
    return outcome


def _map_call(fn, item):
    """Pool-side trampoline: hand the worker's library to the job fn.

    Ships the worker's finished span trees (if tracing) alongside the
    result, so generic mapped functions — corner signoff, Monte-Carlo
    chunks — propagate their spans without knowing about tracing.
    """
    result = fn(item, _process_library())
    return result, obs_spans.take_records()


class ExperimentRunner:
    """Fans jobs out across processes, results in submission order.

    :meth:`run` executes flow jobs; :meth:`map` is the generic
    substrate underneath it, used by the variation engine to fan out
    corner-signoff and Monte-Carlo-chunk jobs with the same
    determinism guarantees (per-job purity, submission-order results,
    serial ≡ parallel).
    """

    def __init__(self, jobs: int = 1, library: Library | None = None):
        self.jobs = max(1, int(jobs))
        self.library = library

    def map(self, fn, items: Sequence) -> list:
        """Apply ``fn(item, library)`` to every item, optionally pooled.

        ``fn`` must be a picklable top-level function whose result is a
        pure function of ``(item, library)``; the runner then
        guarantees identical results for any ``jobs`` setting.
        """
        items = list(items)
        if self.jobs == 1 or len(items) <= 1:
            library = self.library if self.library is not None \
                else _process_library()
            results = [fn(item, library) for item in items]
            self._graft_result_spans(results)
            return results
        workers = min(self.jobs, len(items))
        with ProcessPoolExecutor(
                max_workers=workers, initializer=_worker_init,
                initargs=(self.library, obs_spans.is_enabled())) as pool:
            futures = [pool.submit(_map_call, fn, item) for item in items]
            results = []
            for future in futures:
                result, worker_spans = future.result()
                obs_spans.adopt(worker_spans)
                results.append(result)
        self._graft_result_spans(results)
        return results

    @staticmethod
    def _graft_result_spans(results):
        """Adopt spans riding on outcomes (see JobOutcome.spans)."""
        for result in results:
            records = getattr(result, "spans", None)
            if records:
                obs_spans.adopt(records)
                result.spans = ()

    def run(self, flow_jobs: Sequence[FlowJob]) -> list[JobOutcome]:
        return self.map(run_flow_job, flow_jobs)


def comparison_from_outcomes(circuit: str,
                             outcomes: Sequence[JobOutcome]
                             ) -> TechniqueComparison:
    """Normalize one circuit's outcomes to the Dual-Vth baseline.

    Produces the same rows (same float operations) as
    :func:`repro.core.compare.compare_techniques`; the heavyweight
    per-technique ``results`` dict stays empty because outcomes cross a
    process boundary.
    """
    failed = [o for o in outcomes if not o.ok]
    if failed:
        first = failed[0]
        raise FlowError(
            f"{len(failed)} flow job(s) failed on circuit {circuit!r} "
            f"({first.technique.value}):\n{first.error}")
    # Mirror compare_techniques(): Dual-Vth is the reference when
    # present, else the first requested technique normalizes to 100 %.
    baseline = next((o for o in outcomes
                     if o.technique == Technique.DUAL_VTH), None)
    if baseline is None and outcomes:
        baseline = outcomes[0]
    base_area = baseline.area_um2 if baseline else 1.0
    base_leak = baseline.leakage_nw if baseline else 1.0
    rows = [
        ComparisonRow(
            circuit=circuit,
            technique=outcome.technique,
            area_um2=outcome.area_um2,
            leakage_nw=outcome.leakage_nw,
            area_pct=100.0 * outcome.area_um2 / base_area,
            leakage_pct=100.0 * outcome.leakage_nw / base_leak,
            mt_cells=outcome.mt_cells,
            switches=outcome.switches,
            holders=outcome.holders)
        for outcome in outcomes
    ]
    return TechniqueComparison(circuit=circuit, rows=rows, results={})


def run_sweep(circuits: Sequence[str],
              config: FlowConfig | None = None,
              techniques: Sequence[Technique] = ALL_TECHNIQUES,
              jobs: int = 1,
              seed: int | None = None,
              library: Library | None = None
              ) -> list[TechniqueComparison]:
    """Compare techniques across circuits, optionally in parallel.

    The work grid is ``circuits x techniques``; results come back as
    one :class:`TechniqueComparison` per circuit, in input order.
    """
    config = config or FlowConfig()
    flow_jobs = [FlowJob(circuit=circuit, technique=technique,
                         config=config, seed=seed)
                 for circuit in circuits for technique in techniques]
    outcomes = ExperimentRunner(jobs=jobs, library=library).run(flow_jobs)
    per_circuit = len(techniques)
    comparisons = []
    for index, circuit in enumerate(circuits):
        chunk = outcomes[index * per_circuit:(index + 1) * per_circuit]
        comparisons.append(comparison_from_outcomes(circuit, chunk))
    return comparisons


SWEEP_HEADER = (f"{'circuit':<10} {'technique':<18} {'area%':>8} "
                f"{'leak%':>8} {'MT':>5} {'SW':>4} {'HOLD':>5}")


def render_sweep_row(circuit: str, row: ComparisonRow) -> str:
    return (f"{circuit:<10} {row.technique.value:<18} "
            f"{row.area_pct:8.2f} {row.leakage_pct:8.2f} "
            f"{row.mt_cells:5d} {row.switches:4d} {row.holders:5d}")


def render_sweep(comparisons: Sequence[TechniqueComparison]) -> str:
    """The ISCAS-sweep table: Table 1's format across circuits."""
    lines = [SWEEP_HEADER]
    for comparison in comparisons:
        for row in comparison.rows:
            lines.append(render_sweep_row(comparison.circuit, row))
    return "\n".join(lines)
