"""NLDM lookup-table static timing analysis.

Forward pass propagates (rise, fall) arrival times and slews from
startpoints (primary inputs, flip-flop CK->Q arcs) through the
combinational network in topological order; the backward pass computes
required times from endpoints (primary outputs, flip-flop D setup
checks); slack = required - arrival.  A parallel min-arrival pass
feeds hold checks.

Unateness is honoured: a positive-unate arc maps input rise to output
rise; negative-unate crosses them; non-unate takes the worst of both.

Per-instance *derates* multiply every delay arc of that instance — the
Selective-MT flow uses this to model the actual virtual-ground bounce
of each MT-cell cluster relative to the bounce assumed when the MT
library was characterized.

Clock arrivals are ideal (zero) by default; a per-flip-flop clock
arrival map from CTS introduces real skew into both launch and capture.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Mapping

from repro.liberty.library import Library
from repro.netlist.core import Netlist
from repro.timing.constraints import Constraints
from repro.timing.delay import NetModel

INF = math.inf


def cell_constraint_value(cell, which: str, input_slew: float) -> float:
    """Worst ``which`` ("setup"/"hold") constraint of a cell's D pin.

    Shared by the scalar session and the array view so both backends
    evaluate flip-flop endpoint constraints with the very same rule.
    """
    d_pin = cell.pins.get("D")
    if d_pin is None:
        return 0.0
    for arc in d_pin.timing_arcs:
        if arc.timing_type.startswith(which):
            return arc.constraint(input_slew)
    return 0.0


@dataclasses.dataclass
class NodeTiming:
    """Timing state at a net (measured at its driver pin)."""

    arr_rise: float = -INF
    arr_fall: float = -INF
    min_rise: float = INF
    min_fall: float = INF
    slew_rise: float = 0.0
    slew_fall: float = 0.0
    req_rise: float = INF
    req_fall: float = INF
    # Backtrace: (source net name, through instance name) for worst arrival.
    prev_rise: tuple[str, str] | None = None
    prev_fall: tuple[str, str] | None = None

    @property
    def arrival(self) -> float:
        return max(self.arr_rise, self.arr_fall)

    @property
    def min_arrival(self) -> float:
        return min(self.min_rise, self.min_fall)

    @property
    def required(self) -> float:
        return min(self.req_rise, self.req_fall)

    @property
    def slack(self) -> float:
        return self.required - self.arrival


@dataclasses.dataclass
class EndpointCheck:
    """One setup or hold check result."""

    endpoint: str          # port name or "inst/D"
    kind: str              # "output", "setup", "hold"
    slack: float
    arrival: float
    required: float


@dataclasses.dataclass
class TimingReport:
    """Design-level timing summary."""

    clock_period: float
    wns: float                       # worst setup slack (negative = violated)
    tns: float                       # total negative setup slack
    hold_wns: float
    hold_tns: float
    endpoint_checks: list[EndpointCheck]
    node_timing: dict[str, NodeTiming]
    critical_endpoint: str | None

    @property
    def setup_met(self) -> bool:
        return self.wns >= 0.0

    @property
    def hold_met(self) -> bool:
        return self.hold_wns >= 0.0

    def slack_of_net(self, net_name: str) -> float:
        node = self.node_timing.get(net_name)
        return node.slack if node is not None else INF

    def arrival_of_net(self, net_name: str) -> float:
        node = self.node_timing.get(net_name)
        return node.arrival if node is not None else -INF

    def summary(self) -> str:
        return (f"period={self.clock_period:.3f}ns WNS={self.wns:+.4f} "
                f"TNS={self.tns:+.3f} holdWNS={self.hold_wns:+.4f}")


class TimingAnalyzer:
    """Performs one full STA over a netlist.

    The propagation engine lives in
    :class:`repro.timing.session.TimingSession`; this wrapper runs a
    single-shot session so a fresh analyzer and a session that has
    absorbed the same edits produce bit-identical reports by
    construction.
    """

    def __init__(self, netlist: Netlist, library: Library,
                 constraints: Constraints,
                 parasitics: Mapping[str, object] | None = None,
                 derates: Mapping[str, float] | None = None,
                 clock_arrivals: Mapping[str, float] | None = None,
                 compute_backend: str | None = None):
        self.netlist = netlist
        self.library = library
        self.constraints = constraints
        self.net_model = NetModel(netlist, library, constraints, parasitics)
        self.derates = dict(derates or {})
        self.clock_arrivals = dict(clock_arrivals or {})
        self.compute_backend = compute_backend

    def run(self) -> TimingReport:
        from repro.timing.session import TimingSession

        session = TimingSession(
            self.netlist, self.library, self.constraints,
            derates=self.derates, clock_arrivals=self.clock_arrivals,
            net_model=self.net_model,
            compute_backend=self.compute_backend)
        return session.report()
