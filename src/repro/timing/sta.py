"""NLDM lookup-table static timing analysis.

Forward pass propagates (rise, fall) arrival times and slews from
startpoints (primary inputs, flip-flop CK->Q arcs) through the
combinational network in topological order; the backward pass computes
required times from endpoints (primary outputs, flip-flop D setup
checks); slack = required - arrival.  A parallel min-arrival pass
feeds hold checks.

Unateness is honoured: a positive-unate arc maps input rise to output
rise; negative-unate crosses them; non-unate takes the worst of both.

Per-instance *derates* multiply every delay arc of that instance — the
Selective-MT flow uses this to model the actual virtual-ground bounce
of each MT-cell cluster relative to the bounce assumed when the MT
library was characterized.

Clock arrivals are ideal (zero) by default; a per-flip-flop clock
arrival map from CTS introduces real skew into both launch and capture.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Mapping

from repro.errors import TimingError
from repro.liberty.library import CellKind, Library, TimingArc
from repro.netlist.core import Instance, Net, Netlist, Pin
from repro.timing.constraints import Constraints
from repro.timing.delay import NetModel

INF = math.inf


@dataclasses.dataclass
class NodeTiming:
    """Timing state at a net (measured at its driver pin)."""

    arr_rise: float = -INF
    arr_fall: float = -INF
    min_rise: float = INF
    min_fall: float = INF
    slew_rise: float = 0.0
    slew_fall: float = 0.0
    req_rise: float = INF
    req_fall: float = INF
    # Backtrace: (source net name, through instance name) for worst arrival.
    prev_rise: tuple[str, str] | None = None
    prev_fall: tuple[str, str] | None = None

    @property
    def arrival(self) -> float:
        return max(self.arr_rise, self.arr_fall)

    @property
    def min_arrival(self) -> float:
        return min(self.min_rise, self.min_fall)

    @property
    def required(self) -> float:
        return min(self.req_rise, self.req_fall)

    @property
    def slack(self) -> float:
        return self.required - self.arrival


@dataclasses.dataclass
class EndpointCheck:
    """One setup or hold check result."""

    endpoint: str          # port name or "inst/D"
    kind: str              # "output", "setup", "hold"
    slack: float
    arrival: float
    required: float


@dataclasses.dataclass
class TimingReport:
    """Design-level timing summary."""

    clock_period: float
    wns: float                       # worst setup slack (negative = violated)
    tns: float                       # total negative setup slack
    hold_wns: float
    hold_tns: float
    endpoint_checks: list[EndpointCheck]
    node_timing: dict[str, NodeTiming]
    critical_endpoint: str | None

    @property
    def setup_met(self) -> bool:
        return self.wns >= 0.0

    @property
    def hold_met(self) -> bool:
        return self.hold_wns >= 0.0

    def slack_of_net(self, net_name: str) -> float:
        node = self.node_timing.get(net_name)
        return node.slack if node is not None else INF

    def arrival_of_net(self, net_name: str) -> float:
        node = self.node_timing.get(net_name)
        return node.arrival if node is not None else -INF

    def summary(self) -> str:
        return (f"period={self.clock_period:.3f}ns WNS={self.wns:+.4f} "
                f"TNS={self.tns:+.3f} holdWNS={self.hold_wns:+.4f}")


class TimingAnalyzer:
    """Performs one full STA over a netlist."""

    def __init__(self, netlist: Netlist, library: Library,
                 constraints: Constraints,
                 parasitics: Mapping[str, object] | None = None,
                 derates: Mapping[str, float] | None = None,
                 clock_arrivals: Mapping[str, float] | None = None):
        self.netlist = netlist
        self.library = library
        self.constraints = constraints
        self.net_model = NetModel(netlist, library, constraints, parasitics)
        self.derates = dict(derates or {})
        self.clock_arrivals = dict(clock_arrivals or {})
        self._is_seq = lambda inst: (
            inst.cell_name in library
            and library.cell(inst.cell_name).is_sequential)

    # --- helpers -----------------------------------------------------------

    def _derate(self, inst: Instance) -> float:
        return self.derates.get(inst.name, 1.0)

    def _clock_arrival(self, inst: Instance) -> float:
        return self.clock_arrivals.get(inst.name, 0.0)

    def _skip_cell(self, inst: Instance) -> bool:
        if inst.cell_name not in self.library:
            return True
        kind = self.library.cell(inst.cell_name).kind
        return kind in (CellKind.SWITCH, CellKind.HOLDER)

    # --- main entry -----------------------------------------------------------

    def run(self) -> TimingReport:
        order = self.netlist.topological_order(self._is_seq)
        nodes: dict[str, NodeTiming] = {}

        def node(net: Net) -> NodeTiming:
            entry = nodes.get(net.name)
            if entry is None:
                entry = NodeTiming()
                nodes[net.name] = entry
            return entry

        # --- startpoints --------------------------------------------------
        constraints = self.constraints
        for port in self.netlist.input_ports():
            if port.net is None:
                continue
            entry = node(port.net)
            delay = constraints.input_delay_for(port.name)
            entry.arr_rise = entry.arr_fall = delay
            min_delay = max(delay, constraints.input_delay_min)
            entry.min_rise = entry.min_fall = min_delay
            entry.slew_rise = entry.slew_fall = constraints.input_slew

        for inst in self.netlist.instances.values():
            if not self._is_seq(inst):
                continue
            q_pin = inst.pins.get("Q")
            if q_pin is None or q_pin.net is None:
                continue
            cell = self.library.cell(inst.cell_name)
            arc = cell.pin("Q").arc_from("CK")
            if arc is None:
                raise TimingError(f"flip-flop {cell.name} lacks CK->Q arc")
            load = self.net_model.total_load(q_pin.net)
            clk_slew = constraints.input_slew
            derate = self._derate(inst)
            rise, fall = arc.delay(clk_slew, load)
            srise, sfall = arc.output_slew(clk_slew, load)
            launch = self._clock_arrival(inst)
            entry = node(q_pin.net)
            entry.arr_rise = launch + rise * derate
            entry.arr_fall = launch + fall * derate
            entry.min_rise = entry.arr_rise
            entry.min_fall = entry.arr_fall
            entry.slew_rise = srise
            entry.slew_fall = sfall

        # --- forward propagation ---------------------------------------------
        for inst in order:
            if self._is_seq(inst) or self._skip_cell(inst):
                continue
            cell = self.library.cell(inst.cell_name)
            derate = self._derate(inst)
            for out_pin in inst.output_pins():
                out_net = out_pin.net
                if out_net is None:
                    continue
                lib_out = cell.pins.get(out_pin.name)
                if lib_out is None:
                    continue
                load = self.net_model.total_load(out_net)
                entry = node(out_net)
                for in_pin in inst.input_pins():
                    if in_pin.net is None or in_pin.name == "MTE":
                        continue
                    arc = lib_out.arc_from(in_pin.name)
                    if arc is None:
                        continue
                    src = nodes.get(in_pin.net.name)
                    if src is None or (src.arr_rise == -INF
                                       and src.arr_fall == -INF):
                        continue
                    wire = self.net_model.wire_delay(in_pin.net, in_pin)
                    self._propagate_arc(entry, src, arc, load, wire,
                                        derate, in_pin.net.name, inst.name)

        # --- endpoints: required times + checks --------------------------------
        period = constraints.clock_period
        checks: list[EndpointCheck] = []

        for port in self.netlist.output_ports():
            if port.net is None or port.net.name not in nodes:
                continue
            entry = nodes[port.net.name]
            wire = self.net_model.wire_delay_to_port(port.net, port.name)
            required = period - constraints.output_delay_for(port.name) - wire
            entry.req_rise = min(entry.req_rise, required)
            entry.req_fall = min(entry.req_fall, required)
            arrival = entry.arrival + wire
            checks.append(EndpointCheck(
                endpoint=port.name, kind="output",
                slack=required + wire - arrival,
                arrival=arrival, required=required + wire))

        for inst in self.netlist.instances.values():
            if not self._is_seq(inst):
                continue
            d_pin = inst.pins.get("D")
            if d_pin is None or d_pin.net is None \
                    or d_pin.net.name not in nodes:
                continue
            cell = self.library.cell(inst.cell_name)
            entry = nodes[d_pin.net.name]
            wire = self.net_model.wire_delay(d_pin.net, d_pin)
            capture = period + self._clock_arrival(inst)
            setup = self._constraint_value(cell, "setup")
            hold = self._constraint_value(cell, "hold")
            required = capture - setup - wire
            entry.req_rise = min(entry.req_rise, required)
            entry.req_fall = min(entry.req_fall, required)
            arrival = entry.arrival + wire
            checks.append(EndpointCheck(
                endpoint=f"{inst.name}/D", kind="setup",
                slack=capture - setup - arrival,
                arrival=arrival, required=capture - setup))
            min_arrival = entry.min_arrival + wire
            hold_required = self._clock_arrival(inst) + hold
            checks.append(EndpointCheck(
                endpoint=f"{inst.name}/D", kind="hold",
                slack=min_arrival - hold_required,
                arrival=min_arrival, required=hold_required))

        # --- backward required propagation ---------------------------------------
        for inst in reversed(order):
            if self._is_seq(inst) or self._skip_cell(inst):
                continue
            cell = self.library.cell(inst.cell_name)
            derate = self._derate(inst)
            for out_pin in inst.output_pins():
                out_net = out_pin.net
                if out_net is None or out_net.name not in nodes:
                    continue
                lib_out = cell.pins.get(out_pin.name)
                if lib_out is None:
                    continue
                out_entry = nodes[out_net.name]
                load = self.net_model.total_load(out_net)
                for in_pin in inst.input_pins():
                    if in_pin.net is None or in_pin.name == "MTE":
                        continue
                    arc = lib_out.arc_from(in_pin.name)
                    if arc is None or in_pin.net.name not in nodes:
                        continue
                    src = nodes[in_pin.net.name]
                    wire = self.net_model.wire_delay(in_pin.net, in_pin)
                    slew = max(src.slew_rise, src.slew_fall)
                    rise_d, fall_d = arc.delay(slew, load)
                    rise_d = rise_d * derate + wire
                    fall_d = fall_d * derate + wire
                    if arc.timing_sense == "positive_unate":
                        src.req_rise = min(src.req_rise,
                                           out_entry.req_rise - rise_d)
                        src.req_fall = min(src.req_fall,
                                           out_entry.req_fall - fall_d)
                    elif arc.timing_sense == "negative_unate":
                        src.req_rise = min(src.req_rise,
                                           out_entry.req_fall - fall_d)
                        src.req_fall = min(src.req_fall,
                                           out_entry.req_rise - rise_d)
                    else:
                        worst_d = max(rise_d, fall_d)
                        worst_req = min(out_entry.req_rise, out_entry.req_fall)
                        src.req_rise = min(src.req_rise, worst_req - worst_d)
                        src.req_fall = min(src.req_fall, worst_req - worst_d)

        # --- summarize -----------------------------------------------------------
        setup_checks = [c for c in checks if c.kind in ("output", "setup")]
        hold_checks = [c for c in checks if c.kind == "hold"]
        wns = min((c.slack for c in setup_checks), default=INF)
        tns = sum(min(c.slack, 0.0) for c in setup_checks)
        hold_wns = min((c.slack for c in hold_checks), default=INF)
        hold_tns = sum(min(c.slack, 0.0) for c in hold_checks)
        critical = None
        if setup_checks:
            critical = min(setup_checks, key=lambda c: c.slack).endpoint
        return TimingReport(
            clock_period=period, wns=wns, tns=tns,
            hold_wns=hold_wns, hold_tns=hold_tns,
            endpoint_checks=checks, node_timing=nodes,
            critical_endpoint=critical)

    def _propagate_arc(self, entry: NodeTiming, src: NodeTiming,
                       arc: TimingArc, load: float, wire: float,
                       derate: float, src_net: str, inst_name: str):
        """Fold one arc's contribution into the output node timing."""
        backref = (src_net, inst_name)

        def consider(out_edge: str, in_arr: float, in_min: float,
                     in_slew: float, delay_lut, slew_lut):
            if delay_lut is None:
                return
            delay = delay_lut.lookup(in_slew, load) * derate
            slew = slew_lut.lookup(in_slew, load) if slew_lut else 0.0
            arrival = in_arr + wire + delay
            minimum = in_min + wire + delay
            if out_edge == "rise":
                if arrival > entry.arr_rise:
                    entry.arr_rise = arrival
                    entry.slew_rise = slew
                    entry.prev_rise = backref
                entry.min_rise = min(entry.min_rise, minimum)
            else:
                if arrival > entry.arr_fall:
                    entry.arr_fall = arrival
                    entry.slew_fall = slew
                    entry.prev_fall = backref
                entry.min_fall = min(entry.min_fall, minimum)

        if arc.timing_sense == "positive_unate":
            consider("rise", src.arr_rise, src.min_rise, src.slew_rise,
                     arc.cell_rise, arc.rise_transition)
            consider("fall", src.arr_fall, src.min_fall, src.slew_fall,
                     arc.cell_fall, arc.fall_transition)
        elif arc.timing_sense == "negative_unate":
            consider("rise", src.arr_fall, src.min_fall, src.slew_fall,
                     arc.cell_rise, arc.rise_transition)
            consider("fall", src.arr_rise, src.min_rise, src.slew_rise,
                     arc.cell_fall, arc.fall_transition)
        else:  # non_unate: either input edge can cause either output edge
            for in_arr, in_min, in_slew in (
                    (src.arr_rise, src.min_rise, src.slew_rise),
                    (src.arr_fall, src.min_fall, src.slew_fall)):
                consider("rise", in_arr, in_min, in_slew,
                         arc.cell_rise, arc.rise_transition)
                consider("fall", in_arr, in_min, in_slew,
                         arc.cell_fall, arc.fall_transition)

    def _constraint_value(self, cell, which: str) -> float:
        d_pin = cell.pins.get("D")
        if d_pin is None:
            return 0.0
        for arc in d_pin.timing_arcs:
            if arc.timing_type.startswith(which):
                return arc.constraint(self.constraints.input_slew)
        return 0.0
