"""Incremental static timing: build once, edit, re-propagate cones.

A :class:`TimingSession` owns the expensive STA substrate — the
topological order, the per-net load/wire model and the node-timing
store — and keeps it alive across netlist edits.  Edits are reported
through the session (:meth:`TimingSession.swap_variant`,
:meth:`set_derates`, :meth:`insert_buffer`, or the generic ``touch_*``
hooks); :meth:`report` then re-propagates only the affected region:

* **forward** (arrivals, slews, hold arrivals): the combinational
  fan-out cone of every dirty instance is reset and re-evaluated in the
  cached topological order;
* **backward** (required times): the transitive fan-in of the changed
  region is reset and re-accumulated, reading cached values at the
  clean frontier;
* endpoint checks are always regenerated (they are cheap and make the
  report's check list bit-identical to a from-scratch run).

When the dirty region exceeds ``full_threshold`` of the combinational
instances the session falls back to a full propagation over the cached
structures — incremental STA must never be slower than the rebuild it
replaces.  With ``compute_backend="numpy"`` that full-propagation path
runs on the vectorized array kernels of :mod:`repro.compute` (the
scalar cone-limited path composes with it unchanged, reading the node
store the kernels materialize); see ARCHITECTURE.md "Compute
backends" for the equivalence and invalidation contracts.

**Exactness contract**: the report produced after any tracked edit
sequence is bit-identical (not approximately equal) to the report a
fresh :class:`~repro.timing.sta.TimingAnalyzer` would produce on the
same netlist, because per-node values are pure functions of their
fan-in evaluated by the same code in the same arc order.  The property
test ``tests/timing/test_session.py`` enforces this on randomized edit
sequences.

**Invalidation contract**: a report's ``node_timing`` shares state
with the session; treat a report as stale once further edits have been
applied *and* :meth:`report` has been called again.  Untracked netlist
mutations require :meth:`touch_structural` (tracked dirt, rebuilt
order) or :meth:`invalidate` (conservative full re-propagation).
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Mapping

from repro.errors import TimingError
from repro.liberty.library import CellKind, Library, TimingArc
from repro.netlist import transform
from repro.netlist.core import Instance, Net, Netlist, Pin
from repro.obs.spans import span
from repro.timing.constraints import Constraints
from repro.timing.delay import NetModel
from repro.timing.sta import (
    EndpointCheck,
    INF,
    NodeTiming,
    TimingReport,
    cell_constraint_value,
)


@dataclasses.dataclass
class SessionStats:
    """Work counters: how much propagation the session actually did."""

    sta_calls: int = 0            # report() invocations
    cached_reports: int = 0       # served with zero propagation
    full_runs: int = 0            # full forward+backward propagations
    incremental_runs: int = 0     # cone-limited propagations
    structure_builds: int = 0     # topo order / membership rebuilds
    forward_instances: int = 0    # instances actually forward-evaluated
    forward_instances_saved: int = 0   # clean instances skipped

    @property
    def propagations(self) -> int:
        return self.full_runs + self.incremental_runs

    def as_dict(self) -> dict[str, int]:
        return dataclasses.asdict(self)

    def merge(self, other: "SessionStats") -> "SessionStats":
        for field in dataclasses.fields(SessionStats):
            setattr(self, field.name,
                    getattr(self, field.name) + getattr(other, field.name))
        return self


class TimingSession:
    """Incremental STA over one (netlist, constraints, parasitics) set."""

    def __init__(self, netlist: Netlist, library: Library,
                 constraints: Constraints,
                 parasitics: Mapping[str, object] | None = None,
                 derates: Mapping[str, float] | None = None,
                 clock_arrivals: Mapping[str, float] | None = None,
                 net_model: NetModel | None = None,
                 full_threshold: float = 0.5,
                 compute_backend: str | None = None):
        from repro.compute import resolve_backend

        self.netlist = netlist
        self.library = library
        self.constraints = constraints
        self.net_model = net_model or NetModel(netlist, library, constraints,
                                               parasitics)
        self.derates = dict(derates or {})
        self.clock_arrivals = dict(clock_arrivals or {})
        self.full_threshold = full_threshold
        #: Which engine runs full propagations ("python" | "numpy").
        #: Incremental cone re-propagation is always scalar; the numpy
        #: backend accelerates the full-run path (the expensive case:
        #: fresh analyses and whole-design derate updates).
        self.compute_backend = resolve_backend(compute_backend)
        self._view = None
        self.stats = SessionStats()
        self._order: list[Instance] | None = None
        self._membership: set[str] = set()
        self._comb_count = 0
        self._nodes: dict[str, NodeTiming] = {}
        self._report: TimingReport | None = None
        self._dirty_comb: set[str] = set()
        self._dirty_seq: set[str] = set()
        self._structural = True
        self._full_needed = True

    # --- classification helpers (mirror TimingAnalyzer) -------------------

    def _is_seq(self, inst: Instance) -> bool:
        return (inst.cell_name in self.library
                and self.library.cell(inst.cell_name).is_sequential)

    def _skip_cell(self, inst: Instance) -> bool:
        if inst.cell_name not in self.library:
            return True
        kind = self.library.cell(inst.cell_name).kind
        return kind in (CellKind.SWITCH, CellKind.HOLDER)

    def _derate(self, inst: Instance) -> float:
        return self.derates.get(inst.name, 1.0)

    def _clock_arrival(self, inst: Instance) -> float:
        return self.clock_arrivals.get(inst.name, 0.0)

    # --- edit API ----------------------------------------------------------

    def swap_variant(self, inst: Instance, variant: str) -> Instance:
        """Re-bind ``inst`` to a sibling variant and track the dirt."""
        before_cell = inst.cell_name
        before = {name: pin.net for name, pin in inst.pins.items()}
        transform.swap_variant(self.netlist, inst, self.library, variant)
        if inst.cell_name == before_cell:
            return inst
        for pin_name, net in before.items():
            if net is None:
                continue
            if pin_name not in inst.pins:
                # A connected pin vanished: the dependency graph changed.
                self._structural = True
            self.touch_net(net)
        for pin in inst.pins.values():
            if pin.net is not None:
                self.touch_net(pin.net)
        self._mark_instance(inst)
        if self._view is not None:
            self._view.touch_instance(inst.name)
        return inst

    def insert_buffer(self, net: Net, buffer_cell: str,
                      sinks: list[Pin] | None = None,
                      name_prefix: str = "buf") -> Instance:
        """Insert a buffer (see :func:`repro.netlist.transform.insert_buffer`)
        and track the structural dirt."""
        moved = list(net.sinks) if sinks is None else list(sinks)
        buffer_inst = transform.insert_buffer(
            self.netlist, net, buffer_cell, sinks=sinks,
            name_prefix=name_prefix)
        self._structural = True
        self.touch_net(net)
        self._mark_instance(buffer_inst)
        for pin in moved:
            self._mark_instance(pin.instance)
        return buffer_inst

    def set_derates(self, derates: Mapping[str, float] | None):
        """Replace the derate map, dirtying only instances that changed."""
        new = dict(derates or {})
        changed = set(new) ^ set(self.derates)
        changed |= {name for name in new
                    if name in self.derates and new[name] != self.derates[name]}
        for name in changed:
            inst = self.netlist.instances.get(name)
            if inst is not None:
                self._mark_instance(inst)
        self.derates = new

    def set_derate(self, name: str, derate: float):
        if self.derates.get(name, 1.0) == derate:
            return
        self.derates[name] = derate
        inst = self.netlist.instances.get(name)
        if inst is not None:
            self._mark_instance(inst)

    def touch_instance(self, inst: Instance | str):
        """Mark an instance's timing arcs / derate as changed."""
        if isinstance(inst, str):
            found = self.netlist.instances.get(inst)
            if found is None:
                return
            inst = found
        self._mark_instance(inst)
        if self._view is not None:
            self._view.touch_instance(inst.name)

    def touch_net(self, net: Net | str):
        """Mark a net's load as changed (sinks / keepers / pin caps)."""
        if isinstance(net, str):
            found = self.netlist.nets.get(net)
            if found is None:
                return
            net = found
        self.net_model.invalidate(net)
        if self._view is not None:
            self._view.touch_net(net.name)
        if net.driver is not None:
            self._mark_instance(net.driver.instance)

    def touch_structural(self):
        """The netlist graph changed shape but the dirt is tracked.

        Rebuilds the topological order and node membership on the next
        :meth:`report`; propagation stays incremental.
        """
        self._structural = True

    def invalidate(self):
        """Untracked edits happened: rebuild and re-propagate everything."""
        self._structural = True
        self._full_needed = True
        self.net_model.invalidate()

    def _mark_instance(self, inst: Instance):
        if inst.cell_name not in self.library:
            return
        if self.library.cell(inst.cell_name).is_sequential:
            self._dirty_seq.add(inst.name)
        elif not self._skip_cell(inst):
            self._dirty_comb.add(inst.name)

    # --- main entry -------------------------------------------------------

    @property
    def dirty(self) -> bool:
        return bool(self._dirty_comb or self._dirty_seq
                    or self._structural or self._full_needed)

    def report(self) -> TimingReport:
        """Current-design timing, re-propagating only what changed."""
        self.stats.sta_calls += 1
        if self._report is not None and not self.dirty:
            self.stats.cached_reports += 1
            return self._report
        if self._structural and self._view is not None:
            self._view.touch_structural()
        if self._structural or self._order is None:
            self._build_structure()
        if self._full_needed or self._report is None:
            report = self._full_run()
        else:
            # An incremental pass that blows its cone budget escalates
            # to _full_run() internally; the trace shows that as an
            # sta.full_run span nested under this one.
            with span("sta.incremental",
                      dirty_comb=len(self._dirty_comb),
                      dirty_seq=len(self._dirty_seq)):
                report = self._incremental_run()
        self._dirty_comb.clear()
        self._dirty_seq.clear()
        self._full_needed = False
        self._report = report
        return report

    # --- structure --------------------------------------------------------

    def _build_structure(self):
        """(Re)build the topological order and the node-domain set."""
        self.stats.structure_builds += 1
        self._order = self.netlist.topological_order(self._is_seq)
        membership: set[str] = set()
        comb = 0
        for port in self.netlist.input_ports():
            if port.net is not None:
                membership.add(port.net.name)
        for inst in self.netlist.instances.values():
            if self._is_seq(inst):
                q_pin = inst.pins.get("Q")
                if q_pin is not None and q_pin.net is not None:
                    membership.add(q_pin.net.name)
                continue
            if self._skip_cell(inst):
                continue
            comb += 1
            cell = self.library.cell(inst.cell_name)
            for out_pin in inst.output_pins():
                if out_pin.net is not None and out_pin.name in cell.pins:
                    membership.add(out_pin.net.name)
        self._membership = membership
        self._comb_count = comb
        self._structural = False
        # Nets that left the domain must not shadow a fresh run's absence;
        # nets that joined it need their state (re)computed.
        for name in list(self._nodes):
            if name not in membership:
                del self._nodes[name]
        if not self._full_needed and self._report is not None:
            for name in membership:
                if name not in self._nodes:
                    self._adopt_net(name)

    def _adopt_net(self, net_name: str):
        """A net joined the node domain mid-session: dirty its producer."""
        net = self.netlist.nets.get(net_name)
        if net is None:
            return
        if net.driver is not None:
            self._mark_instance(net.driver.instance)
            return
        if net.driver_port is not None:
            # A new primary input: seed its startpoint and re-evaluate
            # its combinational sinks.
            entry = NodeTiming()
            constraints = self.constraints
            delay = constraints.input_delay_for(net.driver_port.name)
            entry.arr_rise = entry.arr_fall = delay
            min_delay = max(delay, constraints.input_delay_min)
            entry.min_rise = entry.min_fall = min_delay
            entry.slew_rise = entry.slew_fall = constraints.input_slew
            self._nodes[net_name] = entry
            for sink in net.sinks:
                if not self._is_seq(sink.instance):
                    self._mark_instance(sink.instance)

    # --- full propagation -------------------------------------------------

    def _ensure_view(self):
        """The numpy array view for this session (built lazily).

        Returns None — permanently downgrading to the scalar backend —
        if numpy turns out to be unusable at runtime.
        """
        if self._view is not None:
            return self._view
        try:
            from repro.compute.lowercache import cached_view
        except ImportError:
            self.compute_backend = "python"
            return None
        self._view = cached_view(
            self.netlist, self.library, self.constraints, self.net_model,
            clock_arrivals=self.clock_arrivals)
        return self._view

    def _full_run(self) -> TimingReport:
        with span("sta.full_run", instances=self._comb_count) as sp:
            if self.compute_backend == "numpy":
                report = self._full_run_numpy()
                if report is not None:
                    sp.set(backend="numpy")
                    return report
            sp.set(backend="python")
            return self._full_run_python()

    def _full_run_numpy(self) -> TimingReport | None:
        view = self._ensure_view()
        if view is None:
            return None
        from repro.compute.sta import run_full

        self.stats.full_runs += 1
        self.stats.forward_instances += self._comb_count
        nodes, checks = run_full(view, self.derates)
        self._nodes = nodes
        return self._summarize(checks, nodes)

    def _full_run_python(self) -> TimingReport:
        self.stats.full_runs += 1
        self.stats.forward_instances += self._comb_count
        nodes: dict[str, NodeTiming] = {}
        self._nodes = nodes
        self._startpoint_ports(nodes)
        for inst in self.netlist.instances.values():
            if self._is_seq(inst):
                self._startpoint_ff(inst, nodes)
        for inst in self._order:
            if self._is_seq(inst) or self._skip_cell(inst):
                continue
            self._forward_instance(inst, nodes)
        checks = self._endpoint_pass(nodes)
        for inst in reversed(self._order):
            if self._is_seq(inst) or self._skip_cell(inst):
                continue
            self._backward_instance(inst, nodes, None)
        return self._summarize(checks, nodes)

    # --- incremental propagation ------------------------------------------

    def _incremental_run(self) -> TimingReport:
        netlist = self.netlist
        nodes = self._nodes
        membership = self._membership

        # 1. Forward cone: combinational fan-out of every dirty instance.
        # The cone only ever grows, so the moment it crosses the
        # full-run threshold the decision is already made — bail out
        # immediately instead of finishing the BFS first.  (Bisection
        # probes that swap half the design used to pay a complete cone
        # walk *and then* a full run.)
        budget = self.full_threshold * max(self._comb_count, 1)
        cone: set[str] = set()
        frontier: deque[Instance] = deque()
        reset_nets: set[str] = set()
        seed_back: set[str] = set()
        dirty_ffs: list[Instance] = []

        for name in self._dirty_comb:
            inst = netlist.instances.get(name)
            if inst is None or self._is_seq(inst) or self._skip_cell(inst):
                continue
            cone.add(name)
            frontier.append(inst)
            for in_pin in inst.input_pins():
                if in_pin.net is not None and in_pin.name != "MTE" \
                        and in_pin.net.name in membership:
                    seed_back.add(in_pin.net.name)

        if len(cone) > budget:
            return self._full_run()

        for name in self._dirty_seq:
            inst = netlist.instances.get(name)
            if inst is None or not self._is_seq(inst):
                continue
            dirty_ffs.append(inst)
            q_pin = inst.pins.get("Q")
            if q_pin is not None and q_pin.net is not None \
                    and q_pin.net.name in membership \
                    and q_pin.net.name not in reset_nets:
                reset_nets.add(q_pin.net.name)
                for sink in q_pin.net.sinks:
                    target = sink.instance
                    if sink.name != "MTE" and target.name not in cone \
                            and not self._is_seq(target) \
                            and not self._skip_cell(target):
                        cone.add(target.name)
                        frontier.append(target)
            d_pin = inst.pins.get("D")
            if d_pin is not None and d_pin.net is not None \
                    and d_pin.net.name in membership:
                seed_back.add(d_pin.net.name)

        while frontier:
            if len(cone) > budget:
                return self._full_run()
            inst = frontier.popleft()
            for out_pin in inst.output_pins():
                out_net = out_pin.net
                if out_net is None or out_net.name not in membership \
                        or out_net.name in reset_nets:
                    continue
                reset_nets.add(out_net.name)
                for sink in out_net.sinks:
                    target = sink.instance
                    if sink.name == "MTE" or target.name in cone:
                        continue
                    if self._is_seq(target) or self._skip_cell(target):
                        continue
                    cone.add(target.name)
                    frontier.append(target)

        if len(cone) > budget:
            return self._full_run()

        # 2. Backward region: transitive fan-in of everything that changed.
        # Same early exit: cone and back_insts only grow, so crossing
        # the combined threshold mid-walk is final.
        back_budget = self.full_threshold * 2 * max(self._comb_count, 1)
        seed_back |= reset_nets
        back_nets: set[str] = set()
        back_insts: set[str] = set()
        stack = list(seed_back)
        while stack:
            if len(cone) + len(back_insts) > back_budget:
                return self._full_run()
            net_name = stack.pop()
            if net_name in back_nets:
                continue
            back_nets.add(net_name)
            net = netlist.nets.get(net_name)
            if net is None:
                continue
            for sink in net.sinks:
                target = sink.instance
                if sink.name != "MTE" and not self._is_seq(target) \
                        and not self._skip_cell(target):
                    back_insts.add(target.name)
            driver = net.driver
            if driver is None:
                continue
            driver_inst = driver.instance
            if self._is_seq(driver_inst) or self._skip_cell(driver_inst):
                continue
            for in_pin in driver_inst.input_pins():
                if in_pin.net is None or in_pin.name == "MTE":
                    continue
                if in_pin.net.name in membership \
                        and in_pin.net.name not in back_nets:
                    stack.append(in_pin.net.name)

        # A full run evaluates every combinational instance twice (one
        # forward, one backward sweep); incremental pays off while the
        # touched region stays below that, scaled by the threshold.
        if len(cone) + len(back_insts) > back_budget:
            return self._full_run()

        self.stats.incremental_runs += 1
        self.stats.forward_instances += len(cone)
        self.stats.forward_instances_saved += self._comb_count - len(cone)

        # 3. Reset and re-propagate.
        for net_name in reset_nets:
            nodes[net_name] = NodeTiming()
        for net_name in back_nets:
            entry = nodes.get(net_name)
            if entry is not None:
                entry.req_rise = INF
                entry.req_fall = INF
        for inst in dirty_ffs:
            self._startpoint_ff(inst, nodes)
        for inst in self._order:
            if inst.name in cone:
                self._forward_instance(inst, nodes)
        checks = self._endpoint_pass(nodes)
        for inst in reversed(self._order):
            if inst.name in back_insts:
                self._backward_instance(inst, nodes, back_nets)
        return self._summarize(checks, nodes)

    # --- propagation primitives (shared by full and incremental) ----------

    @staticmethod
    def _node(nodes: dict[str, NodeTiming], net: Net) -> NodeTiming:
        entry = nodes.get(net.name)
        if entry is None:
            entry = NodeTiming()
            nodes[net.name] = entry
        return entry

    def _startpoint_ports(self, nodes: dict[str, NodeTiming]):
        constraints = self.constraints
        for port in self.netlist.input_ports():
            if port.net is None:
                continue
            entry = self._node(nodes, port.net)
            delay = constraints.input_delay_for(port.name)
            entry.arr_rise = entry.arr_fall = delay
            min_delay = max(delay, constraints.input_delay_min)
            entry.min_rise = entry.min_fall = min_delay
            entry.slew_rise = entry.slew_fall = constraints.input_slew

    def _startpoint_ff(self, inst: Instance, nodes: dict[str, NodeTiming]):
        q_pin = inst.pins.get("Q")
        if q_pin is None or q_pin.net is None:
            return
        cell = self.library.cell(inst.cell_name)
        arc = cell.pin("Q").arc_from("CK")
        if arc is None:
            raise TimingError(f"flip-flop {cell.name} lacks CK->Q arc")
        load = self.net_model.total_load(q_pin.net)
        clk_slew = self.constraints.input_slew
        derate = self._derate(inst)
        rise, fall = arc.delay(clk_slew, load)
        srise, sfall = arc.output_slew(clk_slew, load)
        launch = self._clock_arrival(inst)
        entry = self._node(nodes, q_pin.net)
        entry.arr_rise = launch + rise * derate
        entry.arr_fall = launch + fall * derate
        entry.min_rise = entry.arr_rise
        entry.min_fall = entry.arr_fall
        entry.slew_rise = srise
        entry.slew_fall = sfall

    def _forward_instance(self, inst: Instance, nodes: dict[str, NodeTiming]):
        cell = self.library.cell(inst.cell_name)
        derate = self._derate(inst)
        for out_pin in inst.output_pins():
            out_net = out_pin.net
            if out_net is None:
                continue
            lib_out = cell.pins.get(out_pin.name)
            if lib_out is None:
                continue
            load = self.net_model.total_load(out_net)
            entry = self._node(nodes, out_net)
            for in_pin in inst.input_pins():
                if in_pin.net is None or in_pin.name == "MTE":
                    continue
                arc = lib_out.arc_from(in_pin.name)
                if arc is None:
                    continue
                src = nodes.get(in_pin.net.name)
                if src is None or (src.arr_rise == -INF
                                   and src.arr_fall == -INF):
                    continue
                wire = self.net_model.wire_delay(in_pin.net, in_pin)
                self._propagate_arc(entry, src, arc, load, wire,
                                    derate, in_pin.net.name, inst.name)

    def _propagate_arc(self, entry: NodeTiming, src: NodeTiming,
                       arc: TimingArc, load: float, wire: float,
                       derate: float, src_net: str, inst_name: str):
        """Fold one arc's contribution into the output node timing."""
        backref = (src_net, inst_name)

        def consider(out_edge: str, in_arr: float, in_min: float,
                     in_slew: float, delay_lut, slew_lut):
            if delay_lut is None:
                return
            delay = delay_lut.lookup(in_slew, load) * derate
            slew = slew_lut.lookup(in_slew, load) if slew_lut else 0.0
            arrival = in_arr + wire + delay
            minimum = in_min + wire + delay
            if out_edge == "rise":
                if arrival > entry.arr_rise:
                    entry.arr_rise = arrival
                    entry.slew_rise = slew
                    entry.prev_rise = backref
                entry.min_rise = min(entry.min_rise, minimum)
            else:
                if arrival > entry.arr_fall:
                    entry.arr_fall = arrival
                    entry.slew_fall = slew
                    entry.prev_fall = backref
                entry.min_fall = min(entry.min_fall, minimum)

        if arc.timing_sense == "positive_unate":
            consider("rise", src.arr_rise, src.min_rise, src.slew_rise,
                     arc.cell_rise, arc.rise_transition)
            consider("fall", src.arr_fall, src.min_fall, src.slew_fall,
                     arc.cell_fall, arc.fall_transition)
        elif arc.timing_sense == "negative_unate":
            consider("rise", src.arr_fall, src.min_fall, src.slew_fall,
                     arc.cell_rise, arc.rise_transition)
            consider("fall", src.arr_rise, src.min_rise, src.slew_rise,
                     arc.cell_fall, arc.fall_transition)
        else:  # non_unate: either input edge can cause either output edge
            for in_arr, in_min, in_slew in (
                    (src.arr_rise, src.min_rise, src.slew_rise),
                    (src.arr_fall, src.min_fall, src.slew_fall)):
                consider("rise", in_arr, in_min, in_slew,
                         arc.cell_rise, arc.rise_transition)
                consider("fall", in_arr, in_min, in_slew,
                         arc.cell_fall, arc.fall_transition)

    def _endpoint_pass(self, nodes: dict[str, NodeTiming]
                       ) -> list[EndpointCheck]:
        """Endpoint checks + required-time seeding (idempotent re-apply)."""
        constraints = self.constraints
        period = constraints.clock_period
        checks: list[EndpointCheck] = []

        for port in self.netlist.output_ports():
            if port.net is None or port.net.name not in nodes:
                continue
            entry = nodes[port.net.name]
            wire = self.net_model.wire_delay_to_port(port.net, port.name)
            required = period - constraints.output_delay_for(port.name) - wire
            entry.req_rise = min(entry.req_rise, required)
            entry.req_fall = min(entry.req_fall, required)
            arrival = entry.arrival + wire
            checks.append(EndpointCheck(
                endpoint=port.name, kind="output",
                slack=required + wire - arrival,
                arrival=arrival, required=required + wire))

        for inst in self.netlist.instances.values():
            if not self._is_seq(inst):
                continue
            d_pin = inst.pins.get("D")
            if d_pin is None or d_pin.net is None \
                    or d_pin.net.name not in nodes:
                continue
            cell = self.library.cell(inst.cell_name)
            entry = nodes[d_pin.net.name]
            wire = self.net_model.wire_delay(d_pin.net, d_pin)
            capture = period + self._clock_arrival(inst)
            setup = self._constraint_value(cell, "setup")
            hold = self._constraint_value(cell, "hold")
            required = capture - setup - wire
            entry.req_rise = min(entry.req_rise, required)
            entry.req_fall = min(entry.req_fall, required)
            arrival = entry.arrival + wire
            checks.append(EndpointCheck(
                endpoint=f"{inst.name}/D", kind="setup",
                slack=capture - setup - arrival,
                arrival=arrival, required=capture - setup))
            min_arrival = entry.min_arrival + wire
            hold_required = self._clock_arrival(inst) + hold
            checks.append(EndpointCheck(
                endpoint=f"{inst.name}/D", kind="hold",
                slack=min_arrival - hold_required,
                arrival=min_arrival, required=hold_required))
        return checks

    def _backward_instance(self, inst: Instance,
                           nodes: dict[str, NodeTiming],
                           restrict: set[str] | None):
        cell = self.library.cell(inst.cell_name)
        derate = self._derate(inst)
        for out_pin in inst.output_pins():
            out_net = out_pin.net
            if out_net is None or out_net.name not in nodes:
                continue
            lib_out = cell.pins.get(out_pin.name)
            if lib_out is None:
                continue
            out_entry = nodes[out_net.name]
            load = self.net_model.total_load(out_net)
            for in_pin in inst.input_pins():
                if in_pin.net is None or in_pin.name == "MTE":
                    continue
                arc = lib_out.arc_from(in_pin.name)
                if arc is None or in_pin.net.name not in nodes:
                    continue
                if restrict is not None \
                        and in_pin.net.name not in restrict:
                    continue
                src = nodes[in_pin.net.name]
                wire = self.net_model.wire_delay(in_pin.net, in_pin)
                slew = max(src.slew_rise, src.slew_fall)
                rise_d, fall_d = arc.delay(slew, load)
                rise_d = rise_d * derate + wire
                fall_d = fall_d * derate + wire
                if arc.timing_sense == "positive_unate":
                    src.req_rise = min(src.req_rise,
                                       out_entry.req_rise - rise_d)
                    src.req_fall = min(src.req_fall,
                                       out_entry.req_fall - fall_d)
                elif arc.timing_sense == "negative_unate":
                    src.req_rise = min(src.req_rise,
                                       out_entry.req_fall - fall_d)
                    src.req_fall = min(src.req_fall,
                                       out_entry.req_rise - rise_d)
                else:
                    worst_d = max(rise_d, fall_d)
                    worst_req = min(out_entry.req_rise, out_entry.req_fall)
                    src.req_rise = min(src.req_rise, worst_req - worst_d)
                    src.req_fall = min(src.req_fall, worst_req - worst_d)

    def _summarize(self, checks: list[EndpointCheck],
                   nodes: dict[str, NodeTiming]) -> TimingReport:
        setup_checks = [c for c in checks if c.kind in ("output", "setup")]
        hold_checks = [c for c in checks if c.kind == "hold"]
        wns = min((c.slack for c in setup_checks), default=INF)
        tns = sum(min(c.slack, 0.0) for c in setup_checks)
        hold_wns = min((c.slack for c in hold_checks), default=INF)
        hold_tns = sum(min(c.slack, 0.0) for c in hold_checks)
        critical = None
        if setup_checks:
            critical = min(setup_checks, key=lambda c: c.slack).endpoint
        return TimingReport(
            clock_period=self.constraints.clock_period,
            wns=wns, tns=tns,
            hold_wns=hold_wns, hold_tns=hold_tns,
            endpoint_checks=checks, node_timing=nodes,
            critical_endpoint=critical)

    def _constraint_value(self, cell, which: str) -> float:
        return cell_constraint_value(cell, which, self.constraints.input_slew)
