"""Net load and wire delay models for STA.

:class:`NetModel` answers two questions per net:

* **total load** seen by the driver (sink pin caps + wire cap + output
  port loads), and
* **wire delay** from the driver to a specific sink pin.

Without parasitics (zero-wireload mode) wire cap/delay are zero.  With
a parasitics map (pre-route estimates or post-route extraction from
:mod:`repro.routing.extract`) both come from the stored data.
"""

from __future__ import annotations

from typing import Mapping

from repro.liberty.library import Library
from repro.netlist.core import Net, Netlist, Pin
from repro.timing.constraints import Constraints


class NetModel:
    """Caches per-net loads; resolves per-sink wire delays."""

    def __init__(self, netlist: Netlist, library: Library,
                 constraints: Constraints,
                 parasitics: Mapping[str, "object"] | None = None):
        self.netlist = netlist
        self.library = library
        self.constraints = constraints
        self.parasitics = parasitics or {}
        self._load_cache: dict[str, float] = {}

    def invalidate(self, net: Net | None = None):
        """Drop cached loads (all, or one net's)."""
        if net is None:
            self._load_cache.clear()
        else:
            self._load_cache.pop(net.name, None)

    def pin_capacitance(self, pin: Pin) -> float:
        cell = self.library.cell(pin.instance.cell_name)
        lib_pin = cell.pins.get(pin.name)
        return lib_pin.capacitance if lib_pin is not None else 0.0

    def total_load(self, net: Net) -> float:
        """Capacitive load seen by the driver of ``net`` (pF)."""
        cached = self._load_cache.get(net.name)
        if cached is not None:
            return cached
        load = 0.0
        for pin in net.sinks:
            load += self.pin_capacitance(pin)
        for pin in net.keepers:
            load += self.pin_capacitance(pin)
        for port in net.sink_ports:
            load += self.constraints.output_load_for(port.name)
        parasitic = self.parasitics.get(net.name)
        if parasitic is not None:
            load += parasitic.total_cap_pf
        self._load_cache[net.name] = load
        return load

    def wire_delay(self, net: Net, sink: Pin) -> float:
        """Wire delay from the net's driver to ``sink`` (ns)."""
        parasitic = self.parasitics.get(net.name)
        if parasitic is None:
            return 0.0
        return parasitic.sink_delay(sink.full_name)

    def wire_delay_to_port(self, net: Net, port_name: str) -> float:
        parasitic = self.parasitics.get(net.name)
        if parasitic is None:
            return 0.0
        return parasitic.sink_delay(f"__port__/{port_name}")
