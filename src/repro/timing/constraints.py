"""Timing constraints (the SDC subset the flow uses).

One ideal clock, per-port input/output delays relative to it, default
input slew and output loads.  :class:`Constraints` instances are plain
data; the SDC reader/writer in :mod:`repro.timing.sdc` round-trips
them.
"""

from __future__ import annotations

import dataclasses

from repro.errors import TimingError


@dataclasses.dataclass
class Constraints:
    """Timing constraints for one design."""

    clock_period: float
    clock_port: str = "CLK"
    input_delay: float = 0.0
    # Earliest possible input arrival, used by hold analysis: external
    # logic cannot change an input the instant the clock fires.
    input_delay_min: float = 0.05
    output_delay: float = 0.0
    input_slew: float = 0.02
    output_load: float = 0.002
    input_delays: dict[str, float] = dataclasses.field(default_factory=dict)
    output_delays: dict[str, float] = dataclasses.field(default_factory=dict)
    output_loads: dict[str, float] = dataclasses.field(default_factory=dict)

    def __post_init__(self):
        if self.clock_period <= 0:
            raise TimingError(
                f"clock period must be positive, got {self.clock_period}")

    def input_delay_for(self, port_name: str) -> float:
        return self.input_delays.get(port_name, self.input_delay)

    def output_delay_for(self, port_name: str) -> float:
        return self.output_delays.get(port_name, self.output_delay)

    def output_load_for(self, port_name: str) -> float:
        return self.output_loads.get(port_name, self.output_load)

    def scaled(self, factor: float) -> "Constraints":
        """A copy with the clock period multiplied by ``factor``."""
        return dataclasses.replace(self, clock_period=self.clock_period * factor)
