"""SDC (Synopsys Design Constraints) subset reader/writer.

Supported commands — the set the flow itself needs::

    create_clock -period 2.0 -name core_clock [get_ports CLK]
    set_input_delay 0.1 [get_ports A]
    set_input_delay -clock core_clock 0.1 [all_inputs]
    set_output_delay 0.2 [get_ports Z]
    set_load 0.004 [get_ports Z]
    set_input_transition 0.05 [all_inputs]

Everything else raises :class:`~repro.errors.ParseError` (explicit is
better than silently ignoring constraints).
"""

from __future__ import annotations

import re
import shlex

from repro.errors import ParseError
from repro.timing.constraints import Constraints

_BRACKET_RE = re.compile(r"\[([^\]]*)\]")


def _parse_target(tokens: list[str]) -> tuple[str, list[str]]:
    """Interpret a bracketed object query: returns (kind, names)."""
    text = " ".join(tokens)
    match = _BRACKET_RE.search(text)
    if match is None:
        raise ParseError(f"expected [get_ports ...] in: {text!r}")
    inner = match.group(1).split()
    if not inner:
        raise ParseError(f"empty object query in: {text!r}")
    command = inner[0]
    if command == "get_ports":
        return "ports", inner[1:]
    if command == "all_inputs":
        return "all_inputs", []
    if command == "all_outputs":
        return "all_outputs", []
    raise ParseError(f"unsupported object query {command!r}")


def parse_sdc(text: str, default_period: float = 10.0) -> Constraints:
    """Parse SDC text into a :class:`Constraints` object."""
    constraints = Constraints(clock_period=default_period)
    seen_clock = False

    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        # shlex chokes on brackets; protect them.
        tokens = shlex.split(line.replace("[", " [ ").replace("]", " ] "))
        # Re-join bracket groups.
        joined: list[str] = []
        depth = 0
        buffer: list[str] = []
        for token in tokens:
            if token == "[":
                depth += 1
                buffer.append(token)
            elif token == "]":
                depth -= 1
                buffer.append(token)
                if depth == 0:
                    joined.append(" ".join(buffer))
                    buffer = []
            elif depth > 0:
                buffer.append(token)
            else:
                joined.append(token)
        if depth != 0:
            raise ParseError(f"unbalanced brackets in SDC line: {line!r}")
        tokens = joined
        command = tokens[0]

        if command == "create_clock":
            period = None
            port = "CLK"
            i = 1
            while i < len(tokens):
                if tokens[i] == "-period":
                    period = float(tokens[i + 1])
                    i += 2
                elif tokens[i] == "-name":
                    i += 2
                elif tokens[i].startswith("["):
                    kind, names = _parse_target([tokens[i]])
                    if kind == "ports" and names:
                        port = names[0]
                    i += 1
                else:
                    raise ParseError(
                        f"unsupported create_clock argument {tokens[i]!r}")
            if period is None:
                raise ParseError("create_clock requires -period")
            constraints.clock_period = period
            constraints.clock_port = port
            seen_clock = True
        elif command in ("set_input_delay", "set_output_delay"):
            value = None
            target = None
            i = 1
            while i < len(tokens):
                if tokens[i] == "-clock":
                    i += 2
                elif tokens[i].startswith("["):
                    target = _parse_target([tokens[i]])
                    i += 1
                else:
                    value = float(tokens[i])
                    i += 1
            if value is None or target is None:
                raise ParseError(f"malformed {command}: {line!r}")
            kind, names = target
            if command == "set_input_delay":
                if kind == "all_inputs":
                    constraints.input_delay = value
                else:
                    for name in names:
                        constraints.input_delays[name] = value
            else:
                if kind == "all_outputs":
                    constraints.output_delay = value
                else:
                    for name in names:
                        constraints.output_delays[name] = value
        elif command == "set_load":
            value = float(tokens[1])
            kind, names = _parse_target(tokens[2:])
            if kind == "all_outputs":
                constraints.output_load = value
            else:
                for name in names:
                    constraints.output_loads[name] = value
        elif command == "set_input_transition":
            constraints.input_slew = float(tokens[1])
        else:
            raise ParseError(f"unsupported SDC command {command!r}")

    if not seen_clock:
        raise ParseError("SDC file defines no clock (create_clock missing)")
    return constraints


def write_sdc(constraints: Constraints) -> str:
    """Render constraints back to SDC text."""
    lines = [
        f"create_clock -period {constraints.clock_period:.6g} -name clk "
        f"[get_ports {constraints.clock_port}]",
        f"set_input_transition {constraints.input_slew:.6g} [all_inputs]",
    ]
    if constraints.input_delay:
        lines.append(f"set_input_delay {constraints.input_delay:.6g} "
                     f"[all_inputs]")
    if constraints.output_delay:
        lines.append(f"set_output_delay {constraints.output_delay:.6g} "
                     f"[all_outputs]")
    if constraints.output_load:
        lines.append(f"set_load {constraints.output_load:.6g} [all_outputs]")
    for port, value in sorted(constraints.input_delays.items()):
        lines.append(f"set_input_delay {value:.6g} [get_ports {port}]")
    for port, value in sorted(constraints.output_delays.items()):
        lines.append(f"set_output_delay {value:.6g} [get_ports {port}]")
    for port, value in sorted(constraints.output_loads.items()):
        lines.append(f"set_load {value:.6g} [get_ports {port}]")
    return "\n".join(lines) + "\n"
