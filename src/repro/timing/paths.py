"""Critical path extraction from an STA result.

The forward pass records, for each net, the (source net, through
instance) pair that produced the worst rise/fall arrival; walking those
references back from the worst endpoint reconstructs the critical path.
"""

from __future__ import annotations

import dataclasses

from repro.netlist.core import Netlist
from repro.timing.sta import TimingReport


@dataclasses.dataclass
class PathStep:
    """One hop on a timing path."""

    net: str
    through_instance: str | None
    arrival: float
    slack: float


@dataclasses.dataclass
class Path:
    """A start-to-end timing path."""

    steps: list[PathStep]
    endpoint: str
    slack: float

    def instances(self) -> list[str]:
        return [s.through_instance for s in self.steps
                if s.through_instance is not None]

    def render(self) -> str:
        lines = [f"Path to {self.endpoint} (slack {self.slack:+.4f} ns)"]
        for step in self.steps:
            via = f" via {step.through_instance}" if step.through_instance \
                else " (startpoint)"
            lines.append(f"  {step.net:<30} arr={step.arrival:8.4f}{via}")
        return "\n".join(lines)


def _endpoint_net(netlist: Netlist, endpoint: str) -> str | None:
    """Resolve an endpoint name (port or inst/D) to its net."""
    if "/" in endpoint:
        inst_name, pin_name = endpoint.split("/", 1)
        inst = netlist.instances.get(inst_name)
        if inst is None:
            return None
        pin = inst.pins.get(pin_name)
        return pin.net.name if pin is not None and pin.net is not None else None
    port = netlist.ports.get(endpoint)
    return port.net.name if port is not None and port.net is not None else None


def extract_path(netlist: Netlist, report: TimingReport,
                 endpoint: str) -> Path | None:
    """Reconstruct the worst path ending at ``endpoint``."""
    net_name = _endpoint_net(netlist, endpoint)
    if net_name is None or net_name not in report.node_timing:
        return None
    steps: list[PathStep] = []
    current = net_name
    seen: set[str] = set()
    while current is not None and current not in seen:
        seen.add(current)
        node = report.node_timing.get(current)
        if node is None:
            break
        if node.arr_rise >= node.arr_fall:
            backref = node.prev_rise
        else:
            backref = node.prev_fall
        through = backref[1] if backref else None
        steps.append(PathStep(net=current, through_instance=through,
                              arrival=node.arrival, slack=node.slack))
        current = backref[0] if backref else None
    steps.reverse()
    endpoint_slack = report.node_timing[net_name].slack
    for check in report.endpoint_checks:
        if check.endpoint == endpoint and check.kind in ("output", "setup"):
            endpoint_slack = check.slack
            break
    return Path(steps=steps, endpoint=endpoint, slack=endpoint_slack)


def worst_paths(netlist: Netlist, report: TimingReport,
                count: int = 5) -> list[Path]:
    """The worst path for each of the ``count`` worst setup endpoints."""
    setup_checks = [c for c in report.endpoint_checks
                    if c.kind in ("output", "setup")]
    setup_checks.sort(key=lambda c: c.slack)
    paths = []
    for check in setup_checks[:count]:
        path = extract_path(netlist, report, check.endpoint)
        if path is not None:
            paths.append(path)
    return paths


def critical_instances(netlist: Netlist, report: TimingReport,
                       slack_margin: float = 0.0) -> set[str]:
    """Instances whose output net slack is at or below ``slack_margin``.

    This is the "critical path" cell set the Selective-MT assignment
    keeps fast (MT-cells); everything else can become high-Vth.
    """
    critical: set[str] = set()
    for inst in netlist.instances.values():
        for pin in inst.output_pins():
            if pin.net is None:
                continue
            if report.slack_of_net(pin.net.name) <= slack_margin:
                critical.add(inst.name)
                break
    return critical
