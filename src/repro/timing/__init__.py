"""Static timing analysis substrate.

* :mod:`repro.timing.constraints` — clock/IO constraints (SDC subset in
  :mod:`repro.timing.sdc`).
* :mod:`repro.timing.delay` — net load and wire-delay models backed by
  pre-route estimates or post-route extraction.
* :mod:`repro.timing.sta` — NLDM lookup-table STA: rise/fall arrival
  and slew propagation, required times, setup/hold checks, per-instance
  derating (used for actual-vs-assumed VGND bounce).
* :mod:`repro.timing.paths` — critical path extraction and reports.
* :mod:`repro.timing.session` — incremental STA: a
  :class:`~repro.timing.session.TimingSession` keeps the topological
  order, arc tables and net models alive across edits and
  re-propagates only dirty fan-out/fan-in cones.
"""

from repro.timing.constraints import Constraints
from repro.timing.delay import NetModel
from repro.timing.paths import Path, PathStep
from repro.timing.session import SessionStats, TimingSession
from repro.timing.sta import TimingAnalyzer, TimingReport

__all__ = [
    "Constraints",
    "NetModel",
    "Path",
    "PathStep",
    "SessionStats",
    "TimingSession",
    "TimingAnalyzer",
    "TimingReport",
]
