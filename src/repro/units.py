"""Unit conventions and physical constants.

The library uses a single consistent internal unit system; every quantity
stored on a model object is in these units:

===========  ==============  =======================================
Quantity     Internal unit   Notes
===========  ==============  =======================================
time         nanoseconds     STA delays, slews, clock periods
capacitance  picofarads      pin caps, wire caps
resistance   kiloohms        kΩ·pF = ns, so Elmore needs no scaling
voltage      volts
current      milliamps       mA·kΩ = V, so IR drop needs no scaling
power        nanowatts       leakage numbers are standby nW
energy       femtojoules
distance     micrometres     placement/routing geometry
area         square microns
width        micrometres     transistor widths
===========  ==============  =======================================

Helper constants convert to/from SI.
"""

from __future__ import annotations

import math

# --- physical constants -------------------------------------------------

BOLTZMANN_EV = 8.617333262e-5
"""Boltzmann constant in eV/K."""

ROOM_TEMPERATURE_K = 300.0
"""Default analysis temperature in kelvin."""


def thermal_voltage(temperature_k: float = ROOM_TEMPERATURE_K) -> float:
    """Thermal voltage kT/q in volts (~25.9 mV at 300 K)."""
    return BOLTZMANN_EV * temperature_k


# --- unit multipliers (internal unit -> SI) ------------------------------

NS = 1e-9          # seconds per internal time unit
PF = 1e-12         # farads per internal capacitance unit
KOHM = 1e3         # ohms per internal resistance unit
MA = 1e-3          # amperes per internal current unit
NW = 1e-9          # watts per internal power unit
UM = 1e-6          # metres per internal distance unit


def watts_to_nw(value_w: float) -> float:
    """Convert watts to internal nanowatts."""
    return value_w / NW


def nw_to_watts(value_nw: float) -> float:
    """Convert internal nanowatts to watts."""
    return value_nw * NW


def amps_to_ma(value_a: float) -> float:
    """Convert amperes to internal milliamps."""
    return value_a / MA


def ma_to_amps(value_ma: float) -> float:
    """Convert internal milliamps to amperes."""
    return value_ma * MA


def seconds_to_ns(value_s: float) -> float:
    """Convert seconds to internal nanoseconds."""
    return value_s / NS


def ns_to_seconds(value_ns: float) -> float:
    """Convert internal nanoseconds to seconds."""
    return value_ns * NS


def pretty_power(value_nw: float) -> str:
    """Render an internal power value with an auto-selected SI prefix."""
    if value_nw == 0.0:
        return "0 nW"
    magnitude = abs(value_nw)
    if magnitude >= 1e6:
        return f"{value_nw / 1e6:.3f} mW"
    if magnitude >= 1e3:
        return f"{value_nw / 1e3:.3f} uW"
    if magnitude >= 1.0:
        return f"{value_nw:.3f} nW"
    return f"{value_nw * 1e3:.3f} pW"


def pretty_time(value_ns: float) -> str:
    """Render an internal time value with an auto-selected SI prefix."""
    magnitude = abs(value_ns)
    if magnitude >= 1.0 or value_ns == 0.0:
        return f"{value_ns:.3f} ns"
    return f"{value_ns * 1e3:.3f} ps"


def pretty_area(value_um2: float) -> str:
    """Render an area in square microns."""
    return f"{value_um2:.2f} um^2"


def db10(ratio: float) -> float:
    """Power ratio in decibels (10*log10); guards against zero."""
    if ratio <= 0.0:
        return -math.inf
    return 10.0 * math.log10(ratio)
