"""Power analysis substrate.

* :mod:`repro.power.leakage` — standby leakage analyzer with
  Selective-MT awareness (MT-cells leak through their cluster switch,
  conventional MT-cells through their embedded switch, holders are
  always powered) and optional state-dependent evaluation.
* :mod:`repro.power.dynamic` — activity-based dynamic power estimate.
* :mod:`repro.power.report` — human-readable breakdowns.
"""

from repro.power.leakage import LeakageAnalyzer, LeakageBreakdown
from repro.power.dynamic import DynamicPowerEstimator
from repro.power.report import render_leakage_table

__all__ = [
    "LeakageAnalyzer",
    "LeakageBreakdown",
    "DynamicPowerEstimator",
    "render_leakage_table",
]
