"""Signal-probability and switching-activity propagation.

The uniform-activity dynamic power model in
:mod:`repro.power.dynamic` is a first-order estimate; this module does
the classic better job: propagate *signal probabilities* (P(net = 1))
through the boolean functions of the mapped netlist, derive per-net
*transition densities* under the temporal-independence assumption
(``alpha = 2 p (1 - p)``), and feed those into the power sum.

Reconvergent fanout makes exact probabilities #P-hard; like every
practical estimator we assume spatial independence at gate inputs and
document the approximation.
"""

from __future__ import annotations

import itertools
from typing import Mapping

from repro.liberty.library import CellKind, Library
from repro.netlist.core import Netlist
from repro.timing.constraints import Constraints
from repro.timing.delay import NetModel


class ActivityEstimator:
    """Propagates P(net=1) and per-net switching activity."""

    def __init__(self, netlist: Netlist, library: Library,
                 input_probability: float = 0.5,
                 input_probabilities: Mapping[str, float] | None = None):
        if not 0.0 <= input_probability <= 1.0:
            raise ValueError("input probability must be in [0, 1]")
        self.netlist = netlist
        self.library = library
        self.input_probability = input_probability
        self.input_probabilities = dict(input_probabilities or {})
        self._is_seq = lambda inst: (
            inst.cell_name in library
            and library.cell(inst.cell_name).is_sequential)

    # --- probability propagation -----------------------------------------

    def signal_probabilities(self) -> dict[str, float]:
        """P(net = 1) for every reachable net."""
        probabilities: dict[str, float] = {}
        for port in self.netlist.input_ports():
            if port.net is not None:
                probabilities[port.net.name] = \
                    self.input_probabilities.get(port.name,
                                                 self.input_probability)
        # Flip-flop outputs: steady state unknown, use 0.5.
        for inst in self.netlist.instances.values():
            if self._is_seq(inst):
                q_pin = inst.pins.get("Q")
                if q_pin is not None and q_pin.net is not None:
                    probabilities[q_pin.net.name] = 0.5
        for inst in self.netlist.topological_order(self._is_seq):
            if self._is_seq(inst):
                continue
            cell = self.library.cells.get(inst.cell_name)
            if cell is None or cell.kind in (CellKind.SWITCH,
                                             CellKind.HOLDER):
                continue
            for pin in inst.output_pins():
                if pin.net is None:
                    continue
                lib_pin = cell.pins.get(pin.name)
                fn = lib_pin.logic_function if lib_pin else None
                if fn is None:
                    probabilities[pin.net.name] = 0.5
                    continue
                probabilities[pin.net.name] = self._output_probability(
                    inst, fn, probabilities)
        return probabilities

    def _output_probability(self, inst, fn, probabilities) -> float:
        """P(out=1) under input independence: sum over minterms."""
        names = sorted(fn.inputs)
        pin_probs = []
        for name in names:
            pin = inst.pins.get(name)
            if pin is None or pin.net is None:
                pin_probs.append(0.5)
            else:
                pin_probs.append(probabilities.get(pin.net.name, 0.5))
        total = 0.0
        for bits in itertools.product((0, 1), repeat=len(names)):
            if fn.evaluate(dict(zip(names, bits))) != 1:
                continue
            weight = 1.0
            for bit, p in zip(bits, pin_probs):
                weight *= p if bit else (1.0 - p)
            total += weight
        return total

    # --- activity ----------------------------------------------------------

    def activities(self) -> dict[str, float]:
        """Per-net toggle probability per cycle: 2 p (1 - p)."""
        return {name: 2.0 * p * (1.0 - p)
                for name, p in self.signal_probabilities().items()}

    def dynamic_power_nw(self, constraints: Constraints,
                         parasitics=None,
                         vdd: float | None = None) -> float:
        """Activity-weighted dynamic power (nW)."""
        if vdd is None:
            tech = self.library.tech
            vdd = tech.vdd if tech is not None else 1.2
        model = NetModel(self.netlist, self.library, constraints,
                         parasitics)
        frequency_ghz = 1.0 / constraints.clock_period
        activities = self.activities()
        total = 0.0
        for name, net in self.netlist.nets.items():
            if not net.has_driver:
                continue
            alpha = activities.get(name, 0.0)
            cap = model.total_load(net)
            total += 0.5 * alpha * cap * vdd * vdd * frequency_ghz * 1e6
        return total
