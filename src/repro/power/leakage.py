"""Standby leakage analysis.

The quantity Table 1 reports is **standby** leakage: the sleep signal
MTE is low, clocks are gated, and the design holds state.  In that mode:

* LVT / HVT cells (including flip-flops) leak through their own logic
  stacks — state-dependent when an input state is known;
* improved MT-cells (``MT``/``MTV``) are cut off by their cluster's
  switch; the cell itself contributes only a small residual, and the
  *switch* contributes its subthreshold leakage once per cluster;
* conventional MT-cells leak through their embedded per-cell switch
  (plus embedded holder), which is the conventional technique's floor;
* output holders and MTE buffers are always powered and leak normally.

:class:`LeakageAnalyzer` also reports *active* leakage (everything
powered, MT logic leaking like LVT) for completeness.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping

from repro.liberty.library import CellKind, Library, VARIANT_LVT
from repro.netlist.core import Netlist
from repro.sim.logic import FLOATING, Simulator


@dataclasses.dataclass
class LeakageBreakdown:
    """Standby leakage totals, by contribution class (nW)."""

    total_nw: float = 0.0
    lvt_logic_nw: float = 0.0
    hvt_logic_nw: float = 0.0
    sequential_nw: float = 0.0
    mt_residual_nw: float = 0.0
    conventional_mt_nw: float = 0.0
    switch_nw: float = 0.0
    holder_nw: float = 0.0
    instance_count: int = 0
    per_instance: dict[str, float] = dataclasses.field(default_factory=dict)

    def add(self, category: str, instance: str, value: float):
        setattr(self, category, getattr(self, category) + value)
        self.total_nw += value
        self.instance_count += 1
        self.per_instance[instance] = value

    #: The contribution categories, in report order.
    CATEGORIES = ("lvt_logic_nw", "hvt_logic_nw", "sequential_nw",
                  "mt_residual_nw", "conventional_mt_nw", "switch_nw",
                  "holder_nw")

    def category_values(self) -> dict[str, float]:
        return {category: getattr(self, category)
                for category in self.CATEGORIES}

    def shares_pct(self) -> dict[str, float]:
        """Percentage-of-total per category (zeros when total is zero)."""
        total = self.total_nw
        return {category: (100.0 * value / total if total else 0.0)
                for category, value in self.category_values().items()}

    def as_dict(self) -> dict[str, float | int | dict[str, float]]:
        """Self-describing summary via the schema registry: totals,
        count, per-category shares and the per-instance map."""
        from repro.api import schemas  # lazy: loads the registry

        return schemas.to_dict(self)


class LeakageAnalyzer:
    """Computes standby / active leakage for one netlist.

    Totals are accumulated in **stable index-sorted order** (instances
    sorted by name) on both compute backends, so the floating-point
    accumulation order — and therefore the reported totals, digit for
    digit — is independent of netlist construction order.  The
    ``numpy`` backend replaces the scalar per-category accumulation
    with one array summation pass over the same sorted values.
    """

    def __init__(self, netlist: Netlist, library: Library,
                 compute_backend: str | None = None):
        from repro.compute import resolve_backend

        self.netlist = netlist
        self.library = library
        self.compute_backend = resolve_backend(compute_backend)

    # --- standby ------------------------------------------------------------

    def standby_leakage(
            self,
            input_vector: Mapping[str, int] | None = None,
            state: Mapping[str, int] | None = None) -> LeakageBreakdown:
        """Standby leakage breakdown.

        With an ``input_vector`` the design is simulated in standby mode
        and powered cells use state-dependent leakage; otherwise every
        cell contributes its state-averaged default.
        """
        net_values = None
        if input_vector is not None:
            sim = Simulator(self.netlist, self.library)
            result = sim.evaluate(input_vector, state, standby=True)
            net_values = result.net_values

        entries = [(name, *self._classify(self.netlist.instances[name],
                                          net_values))
                   for name in sorted(self.netlist.instances)]
        if self.compute_backend == "numpy":
            return self._summed_numpy(entries)
        breakdown = LeakageBreakdown()
        for name, category, value in entries:
            breakdown.add(category, name, value)
        return breakdown

    def _classify(self, inst, net_values) -> tuple[str, float]:
        """(category, value) of one instance's standby contribution."""
        cell = self.library.cell(inst.cell_name)
        if cell.kind == CellKind.SWITCH:
            return "switch_nw", cell.default_leakage_nw
        if cell.kind == CellKind.HOLDER:
            return "holder_nw", cell.default_leakage_nw
        if cell.is_conventional_mt:
            return "conventional_mt_nw", cell.default_leakage_nw
        if cell.is_improved_mt:
            return "mt_residual_nw", cell.default_leakage_nw
        if cell.is_sequential:
            return "sequential_nw", self._powered_leakage(
                inst, cell, net_values)
        if cell.vth_class.value == "high":
            return "hvt_logic_nw", self._powered_leakage(
                inst, cell, net_values)
        return "lvt_logic_nw", self._powered_leakage(inst, cell, net_values)

    def _summed_numpy(self, entries) -> LeakageBreakdown:
        """Array-summed breakdown over the index-sorted entries."""
        import numpy as np

        from repro.compute.kernels import category_sums

        categories = LeakageBreakdown.CATEGORIES
        category_index = {name: i for i, name in enumerate(categories)}
        values = np.array([value for _n, _c, value in entries], dtype=float)
        codes = [category_index[category] for _n, category, _v in entries]
        sums = category_sums(values, codes, len(categories))
        breakdown = LeakageBreakdown()
        for category, total in zip(categories, sums.tolist()):
            setattr(breakdown, category, total)
        breakdown.total_nw = float(values.sum())
        breakdown.instance_count = len(entries)
        breakdown.per_instance = {name: value
                                  for name, _c, value in entries}
        return breakdown

    def _powered_leakage(self, inst, cell, net_values) -> float:
        """Leakage of a powered cell, state-dependent if values known."""
        if net_values is None or not cell.leakage_states:
            return cell.default_leakage_nw
        env = {}
        for pin in inst.input_pins():
            if pin.net is None:
                return cell.default_leakage_nw
            value = net_values.get(pin.net.name)
            if value in (0, 1):
                env[pin.name] = value
            elif value == FLOATING:
                # Floating input on a powered gate: worst-case leakage
                # (this is the hazard output holders prevent).
                return cell.worst_leakage_nw()
            else:
                return cell.default_leakage_nw
        return cell.leakage_nw(env)

    # --- active --------------------------------------------------------------

    def active_leakage(self) -> float:
        """Total leakage with the design awake (MTE high), in nW.

        MT variants leak like their LVT siblings because the switch
        connects their virtual ground; switches themselves are on
        (negligible subthreshold); holders are inert but still powered.
        Accumulated in the same stable index-sorted order as the
        standby breakdown.
        """
        total = 0.0
        for name in sorted(self.netlist.instances):
            inst = self.netlist.instances[name]
            cell = self.library.cell(inst.cell_name)
            if cell.kind == CellKind.SWITCH:
                continue  # conducting, no subthreshold contribution
            if cell.is_mt:
                lvt = self.library.variant_of(cell, VARIANT_LVT)
                total += lvt.default_leakage_nw
            else:
                total += cell.default_leakage_nw
        return total

    # --- convenience -----------------------------------------------------------

    def total_area(self) -> float:
        """Total placed cell area in um^2."""
        return sum(self.library.cell(inst.cell_name).area
                   for inst in self.netlist.instances.values())
