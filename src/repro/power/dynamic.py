"""Activity-based dynamic power estimation.

Not required for Table 1 (which reports standby leakage) but part of a
complete power story: ``P = 0.5 * alpha * C * Vdd^2 * f`` summed over
nets, where C combines wire and pin capacitance.
"""

from __future__ import annotations

from typing import Mapping

from repro.liberty.library import Library
from repro.netlist.core import Netlist
from repro.timing.constraints import Constraints
from repro.timing.delay import NetModel


class DynamicPowerEstimator:
    """Uniform-activity dynamic power model."""

    def __init__(self, netlist: Netlist, library: Library,
                 constraints: Constraints,
                 parasitics: Mapping[str, object] | None = None,
                 activity: float = 0.1):
        if not 0.0 <= activity <= 1.0:
            raise ValueError(f"activity must be in [0,1], got {activity}")
        self.netlist = netlist
        self.library = library
        self.constraints = constraints
        self.activity = activity
        self._net_model = NetModel(netlist, library, constraints, parasitics)

    def total_power_nw(self, vdd: float | None = None) -> float:
        """Total dynamic power in nW at the constraint clock frequency."""
        if vdd is None:
            tech = self.library.tech
            vdd = tech.vdd if tech is not None else 1.2
        frequency_ghz = 1.0 / self.constraints.clock_period
        total = 0.0
        for net in self.netlist.nets.values():
            if not net.has_driver:
                continue
            cap = self._net_model.total_load(net)
            # pF * V^2 * GHz = mW; convert to nW.
            total += 0.5 * self.activity * cap * vdd * vdd \
                * frequency_ghz * 1e6
        return total

    def per_net_energy_fj(self, net_name: str,
                          vdd: float | None = None) -> float:
        """Switching energy of one net per transition (fJ)."""
        if vdd is None:
            tech = self.library.tech
            vdd = tech.vdd if tech is not None else 1.2
        net = self.netlist.net(net_name)
        cap = self._net_model.total_load(net)
        # pF * V^2 = uJ per F... 0.5*C*V^2 with C in pF gives pJ; to fJ.
        return 0.5 * cap * vdd * vdd * 1e3
