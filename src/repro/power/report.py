"""Rendering helpers for power results."""

from __future__ import annotations

from repro import units
from repro.power.leakage import LeakageBreakdown

_CATEGORY_LABELS = (
    ("lvt_logic_nw", "Low-Vth logic"),
    ("hvt_logic_nw", "High-Vth logic"),
    ("sequential_nw", "Flip-flops"),
    ("mt_residual_nw", "MT-cell residual"),
    ("conventional_mt_nw", "Conventional MT (embedded switch)"),
    ("switch_nw", "Shared switch transistors"),
    ("holder_nw", "Output holders"),
)


def render_leakage_table(breakdown: LeakageBreakdown,
                         title: str = "Standby leakage") -> str:
    """Format a leakage breakdown as an aligned text table."""
    lines = [title, "-" * len(title)]
    shares = breakdown.shares_pct()
    for key, label in _CATEGORY_LABELS:
        value = getattr(breakdown, key)
        if value == 0.0:
            continue
        lines.append(f"{label:<36} {units.pretty_power(value):>14} "
                     f"({shares[key]:5.1f}%)")
    lines.append(f"{'Total':<36} "
                 f"{units.pretty_power(breakdown.total_nw):>14}")
    lines.append(f"{'Instances':<36} {breakdown.instance_count:>14d}")
    return "\n".join(lines)


def render_comparison_row(name: str, area: float, leakage: float,
                          area_base: float, leakage_base: float) -> str:
    """One Table-1-style row: normalized area and leakage."""
    area_pct = 100.0 * area / area_base if area_base else 0.0
    leak_pct = 100.0 * leakage / leakage_base if leakage_base else 0.0
    return (f"{name:<12} area={area_pct:7.2f}%  leakage={leak_pct:7.2f}%  "
            f"({units.pretty_area(area)}, {units.pretty_power(leakage)})")
