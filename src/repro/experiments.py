"""Pinned experiment definitions (the paper's evaluation).

Everything the benchmark harness needs to regenerate Table 1 lives
here: the per-circuit flow configurations (margins chosen so circuit A
is timing-tight and circuit B looser, as Table 1 implies) and the
paper's published numbers for comparison.
"""

from __future__ import annotations

import dataclasses

from repro.config import FlowConfig, Technique
from repro.core.compare import TechniqueComparison, compare_techniques
from repro.liberty.library import Library
from repro.liberty.synth import build_default_library
from repro.benchcircuits.suite import load_circuit

#: Paper Table 1 values, percent of the Dual-Vth baseline.
PAPER_TABLE1 = {
    ("A", Technique.DUAL_VTH): {"area": 100.00, "leakage": 100.00},
    ("A", Technique.CONVENTIONAL_SMT): {"area": 164.84, "leakage": 14.58},
    ("A", Technique.IMPROVED_SMT): {"area": 133.18, "leakage": 9.42},
    ("B", Technique.DUAL_VTH): {"area": 100.00, "leakage": 100.00},
    ("B", Technique.CONVENTIONAL_SMT): {"area": 142.22, "leakage": 19.42},
    ("B", Technique.IMPROVED_SMT): {"area": 115.65, "leakage": 12.21},
}


def table1_config(circuit: str) -> FlowConfig:
    """The pinned flow configuration for a Table 1 circuit."""
    if circuit in ("A", "circuitA"):
        return FlowConfig(timing_margin=0.09, utilization=0.75)
    if circuit in ("B", "circuitB"):
        return FlowConfig(timing_margin=0.10, utilization=0.75)
    raise KeyError(f"no Table 1 config for circuit {circuit!r}")


@dataclasses.dataclass
class Table1Result:
    """Both circuits' comparisons plus the paper reference."""

    comparisons: dict[str, TechniqueComparison]

    def measured(self, circuit: str, technique: Technique,
                 metric: str) -> float:
        row = self.comparisons[circuit].row(technique)
        return row.area_pct if metric == "area" else row.leakage_pct

    def paper(self, circuit: str, technique: Technique,
              metric: str) -> float:
        return PAPER_TABLE1[(circuit, technique)][metric]

    def render(self) -> str:
        lines = [
            "Table 1 reproduction (percent of Dual-Vth baseline)",
            f"{'Circuit':<8} {'Metric':<8} {'Technique':<18} "
            f"{'Paper':>8} {'Ours':>8}",
        ]
        for circuit in ("A", "B"):
            for metric in ("area", "leakage"):
                for technique in (Technique.DUAL_VTH,
                                  Technique.CONVENTIONAL_SMT,
                                  Technique.IMPROVED_SMT):
                    lines.append(
                        f"{circuit:<8} {metric:<8} {technique.value:<18} "
                        f"{self.paper(circuit, technique, metric):8.2f} "
                        f"{self.measured(circuit, technique, metric):8.2f}")
        return "\n".join(lines)


def run_table1(library: Library | None = None,
               circuits: tuple[str, ...] = ("A", "B"),
               jobs: int = 1) -> Table1Result:
    """Run the full Table 1 experiment (three flows per circuit).

    ``jobs > 1`` routes the whole circuit x technique grid through the
    process-pool experiment runner (identical numbers, parallel
    wall-clock; comparisons then carry rows only, not the full
    per-technique flow results).
    """
    library = library or build_default_library()
    comparisons: dict[str, TechniqueComparison] = {}
    if jobs > 1:
        from repro.runner import (
            ALL_TECHNIQUES,
            ExperimentRunner,
            FlowJob,
            comparison_from_outcomes,
        )

        flow_jobs = [FlowJob(circuit=f"circuit{short}", technique=technique,
                             config=table1_config(short))
                     for short in circuits for technique in ALL_TECHNIQUES]
        outcomes = ExperimentRunner(jobs=jobs, library=library).run(flow_jobs)
        per_circuit = len(ALL_TECHNIQUES)
        for index, short in enumerate(circuits):
            chunk = outcomes[index * per_circuit:(index + 1) * per_circuit]
            comparisons[short] = comparison_from_outcomes(short, chunk)
        return Table1Result(comparisons=comparisons)
    for short in circuits:
        name = f"circuit{short}"
        netlist = load_circuit(name)
        comparisons[short] = compare_techniques(
            netlist, library, table1_config(short), circuit_name=short)
    return Table1Result(comparisons=comparisons)


def _resolve_circuit(short: str) -> str:
    """Table 1 shorthand ("A"/"B") or any suite circuit name."""
    return f"circuit{short}" if short in ("A", "B") else short


def _circuit_config(short: str, config: FlowConfig | None) -> FlowConfig:
    if config is not None:
        return config
    try:
        return table1_config(short)
    except KeyError:
        return FlowConfig()


@dataclasses.dataclass
class CornerSignoffResult:
    """Corner signoff across a circuit x technique x corner grid."""

    corners: tuple[str, ...]
    #: (circuit, technique) -> CornerOutcome, submission order.
    outcomes: dict[tuple[str, "Technique"], "CornerOutcome"]

    def outcome(self, circuit: str, technique: Technique) -> "CornerOutcome":
        return self.outcomes[(circuit, technique)]

    def as_dict(self) -> dict:
        return {
            "corners": list(self.corners),
            "results": [
                {
                    "circuit": circuit,
                    "technique": technique.value,
                    "area_um2": outcome.area_um2,
                    "nominal_leakage_nw": outcome.nominal_leakage_nw,
                    "nominal_wns": outcome.nominal_wns,
                    "corners": [dataclasses.asdict(row)
                                for row in outcome.rows],
                }
                for (circuit, technique), outcome in self.outcomes.items()
            ],
        }

    def render(self) -> str:
        lines = [
            "Corner signoff (standby leakage nW / setup WNS ns)",
            f"{'Circuit':<10} {'Technique':<18} {'Corner':<16} "
            f"{'Leak(nW)':>12} {'xNominal':>9} {'WNS':>9}",
        ]
        for (circuit, technique), outcome in self.outcomes.items():
            base = outcome.nominal_leakage_nw or 1.0
            for row in outcome.rows:
                lines.append(
                    f"{circuit:<10} {technique.value:<18} {row.corner:<16} "
                    f"{row.leakage_nw:12.2f} {row.leakage_nw / base:9.2f} "
                    f"{row.wns:+9.4f}")
        return "\n".join(lines)


def run_table1_corners(circuits: tuple[str, ...] = ("A", "B"),
                       techniques=None,
                       corners: tuple[str, ...] | None = None,
                       config: FlowConfig | None = None,
                       library: Library | None = None,
                       jobs: int = 1) -> CornerSignoffResult:
    """Table 1 under PVT corners: every technique signed off per corner.

    The grid is ``circuits x techniques`` (one flow each, corners are
    evaluated inside the job), fanned out through the experiment
    runner; results are deterministic for any ``jobs``.
    """
    from repro.runner import ALL_TECHNIQUES, ExperimentRunner
    from repro.variation.corners import default_signoff_corners
    from repro.variation.jobs import CornerJob, run_corner_job

    library = library or build_default_library()
    techniques = tuple(techniques or ALL_TECHNIQUES)
    corners = tuple(corners or default_signoff_corners(library.tech))
    labeled_grid = [
        (short, CornerJob(circuit=_resolve_circuit(short),
                          technique=technique,
                          config=_circuit_config(short, config),
                          corners=corners))
        for short in circuits for technique in techniques]
    grid = [job for _, job in labeled_grid]
    outcomes = ExperimentRunner(jobs=jobs, library=library).map(
        run_corner_job, grid)
    failed = [o for o in outcomes if not o.ok]
    if failed:
        from repro.errors import FlowError

        first = failed[0]
        raise FlowError(
            f"{len(failed)} corner job(s) failed "
            f"({first.circuit}/{first.technique.value}):\n{first.error}")
    keyed = {(short, job.technique): outcome
             for (short, job), outcome in zip(labeled_grid, outcomes)}
    return CornerSignoffResult(corners=corners, outcomes=keyed)


@dataclasses.dataclass
class MonteCarloStudy:
    """Per-technique Monte-Carlo statistics on one circuit."""

    circuit: str
    samples: int
    seed: int
    corner: str | None
    #: technique -> (nominal leakage nW, nominal WNS | None, stats)
    results: dict["Technique", "McTechniqueResult"]

    def result(self, technique: Technique) -> "McTechniqueResult":
        return self.results[technique]

    def as_dict(self) -> dict:
        return {
            "circuit": self.circuit,
            "samples": self.samples,
            "seed": self.seed,
            "corner": self.corner,
            "results": {
                technique.value: {
                    "nominal_leakage_nw": res.nominal_leakage_nw,
                    "nominal_wns": res.nominal_wns,
                    "area_um2": res.area_um2,
                    "statistics": res.statistics.as_dict(),
                }
                for technique, res in self.results.items()
            },
        }

    def render(self) -> str:
        where = f" @ {self.corner}" if self.corner else ""
        lines = [
            f"Monte-Carlo standby leakage on {self.circuit}{where} "
            f"({self.samples} samples, seed {self.seed})",
            f"{'Technique':<18} {'Nominal':>10} {'Mean':>10} {'Sigma':>10} "
            f"{'P95':>10} {'LeakYld':>8} {'TimYld':>7}",
        ]
        for technique, res in self.results.items():
            stats = res.statistics
            leak_yield = (f"{stats.leakage_yield:8.2f}"
                          if stats.leakage_yield is not None else "       -")
            timing_yield = (f"{stats.timing_yield:7.2f}"
                            if stats.timing_yield is not None else "      -")
            lines.append(
                f"{technique.value:<18} {res.nominal_leakage_nw:10.2f} "
                f"{stats.mean_nw:10.2f} {stats.std_nw:10.2f} "
                f"{stats.p95_nw:10.2f} {leak_yield} {timing_yield}")
        return "\n".join(lines)


@dataclasses.dataclass
class McTechniqueResult:
    """One technique's Monte-Carlo outcome."""

    nominal_leakage_nw: float
    nominal_wns: float | None
    area_um2: float
    statistics: "McStatistics"
    samples: list


def run_montecarlo(circuit: str = "A",
                   techniques=None,
                   samples: int = 64,
                   seed: int = 1,
                   sigma_global_v: float = 0.03,
                   sigma_local_v: float = 0.015,
                   timing: bool = True,
                   corner: str | None = None,
                   leakage_budget_nw: float | None = None,
                   config: FlowConfig | None = None,
                   library: Library | None = None,
                   jobs: int = 1) -> MonteCarloStudy:
    """Monte-Carlo leakage/timing study across techniques.

    Samples are chunked across the experiment runner; since sample
    ``k`` is a pure function of ``(seed, k)``, the merged statistics
    are identical for any ``jobs`` setting.  The leakage-yield budget
    defaults to ``McConfig.budget_factor`` x each technique's own
    nominal leakage.
    """
    from repro.runner import ALL_TECHNIQUES, ExperimentRunner
    from repro.variation.jobs import McJob, run_mc_job
    from repro.variation.montecarlo import McConfig, summarize

    library = library or build_default_library()
    techniques = tuple(techniques or ALL_TECHNIQUES)
    mc = McConfig(samples=samples, seed=seed,
                  sigma_global_v=sigma_global_v,
                  sigma_local_v=sigma_local_v, timing=timing,
                  leakage_budget_nw=leakage_budget_nw)
    flow_config = _circuit_config(circuit, config)
    resolved = _resolve_circuit(circuit)
    chunks = min(max(1, jobs), samples)
    bounds = [(index * samples // chunks,
               (index + 1) * samples // chunks) for index in range(chunks)]
    grid = [McJob(circuit=resolved, technique=technique, config=flow_config,
                  mc=mc, corner=corner, start=start, count=stop - start)
            for technique in techniques for (start, stop) in bounds]
    outcomes = ExperimentRunner(jobs=jobs, library=library).map(
        run_mc_job, grid)
    failed = [o for o in outcomes if not o.ok]
    if failed:
        from repro.errors import FlowError

        first = failed[0]
        raise FlowError(
            f"{len(failed)} Monte-Carlo job(s) failed "
            f"({first.circuit}/{first.technique.value}):\n{first.error}")
    results: dict[Technique, McTechniqueResult] = {}
    per_technique = len(bounds)
    for index, technique in enumerate(techniques):
        chunk = outcomes[index * per_technique:(index + 1) * per_technique]
        merged = [sample for outcome in chunk for sample in outcome.samples]
        budget = mc.leakage_budget_nw
        if budget is None:
            budget = mc.budget_factor * chunk[0].nominal_leakage_nw
        results[technique] = McTechniqueResult(
            nominal_leakage_nw=chunk[0].nominal_leakage_nw,
            nominal_wns=chunk[0].nominal_wns,
            area_um2=chunk[0].area_um2,
            statistics=summarize(merged, leakage_budget_nw=budget),
            samples=merged)
    return MonteCarloStudy(circuit=resolved, samples=samples, seed=seed,
                           corner=corner, results=results)
