"""Pinned experiment definitions (the paper's evaluation).

Everything the benchmark harness needs to regenerate Table 1 lives
here: the per-circuit flow configurations (margins chosen so circuit A
is timing-tight and circuit B looser, as Table 1 implies) and the
paper's published numbers for comparison.

.. deprecated::
    The ``run_*`` entry points are deprecation shims over
    :mod:`repro.api` — same signatures, same numbers, but each call
    builds a fresh :class:`~repro.api.Workspace`.  Hold a workspace
    (or run ``repro-smt serve``) to keep compiled state warm across
    calls.
"""

from __future__ import annotations

import dataclasses
import warnings

from repro.config import FlowConfig, Technique
from repro.core.compare import TechniqueComparison
from repro.liberty.library import Library

#: Paper Table 1 values, percent of the Dual-Vth baseline.
PAPER_TABLE1 = {
    ("A", Technique.DUAL_VTH): {"area": 100.00, "leakage": 100.00},
    ("A", Technique.CONVENTIONAL_SMT): {"area": 164.84, "leakage": 14.58},
    ("A", Technique.IMPROVED_SMT): {"area": 133.18, "leakage": 9.42},
    ("B", Technique.DUAL_VTH): {"area": 100.00, "leakage": 100.00},
    ("B", Technique.CONVENTIONAL_SMT): {"area": 142.22, "leakage": 19.42},
    ("B", Technique.IMPROVED_SMT): {"area": 115.65, "leakage": 12.21},
}


def table1_config(circuit: str) -> FlowConfig:
    """The pinned flow configuration for a Table 1 circuit."""
    if circuit in ("A", "circuitA"):
        return FlowConfig(timing_margin=0.09, utilization=0.75)
    if circuit in ("B", "circuitB"):
        return FlowConfig(timing_margin=0.10, utilization=0.75)
    raise KeyError(f"no Table 1 config for circuit {circuit!r}")


@dataclasses.dataclass
class Table1Result:
    """Both circuits' comparisons plus the paper reference."""

    comparisons: dict[str, TechniqueComparison]

    def measured(self, circuit: str, technique: Technique,
                 metric: str) -> float:
        row = self.comparisons[circuit].row(technique)
        return row.area_pct if metric == "area" else row.leakage_pct

    def paper(self, circuit: str, technique: Technique,
              metric: str) -> float:
        return PAPER_TABLE1[(circuit, technique)][metric]

    def render(self) -> str:
        lines = [
            "Table 1 reproduction (percent of Dual-Vth baseline)",
            f"{'Circuit':<8} {'Metric':<8} {'Technique':<18} "
            f"{'Paper':>8} {'Ours':>8}",
        ]
        for circuit in ("A", "B"):
            for metric in ("area", "leakage"):
                for technique in (Technique.DUAL_VTH,
                                  Technique.CONVENTIONAL_SMT,
                                  Technique.IMPROVED_SMT):
                    lines.append(
                        f"{circuit:<8} {metric:<8} {technique.value:<18} "
                        f"{self.paper(circuit, technique, metric):8.2f} "
                        f"{self.measured(circuit, technique, metric):8.2f}")
        return "\n".join(lines)


def _deprecated(name: str):
    warnings.warn(
        f"repro.experiments.{name}() is deprecated; use the repro.api "
        f"Workspace/Design facade (which caches compiled state across "
        f"calls) instead", DeprecationWarning, stacklevel=3)


def _workspace(library: Library | None = None):
    from repro.api import Workspace

    return Workspace(library=library)


def run_table1(library: Library | None = None,
               circuits: tuple[str, ...] = ("A", "B"),
               jobs: int = 1) -> Table1Result:
    """Run the full Table 1 experiment (three flows per circuit).

    .. deprecated:: delegates to :func:`repro.api.studies.table1_study`.

    ``jobs > 1`` routes the whole circuit x technique grid through the
    process-pool experiment runner (identical numbers, parallel
    wall-clock; comparisons then carry rows only, not the full
    per-technique flow results).
    """
    _deprecated("run_table1")
    from repro.api.studies import table1_study

    return table1_study(_workspace(library), circuits=circuits, jobs=jobs)


def _resolve_circuit(short: str) -> str:
    """Table 1 shorthand ("A"/"B") or any suite circuit name."""
    return f"circuit{short}" if short in ("A", "B") else short


def _circuit_config(short: str, config: FlowConfig | None) -> FlowConfig:
    if config is not None:
        return config
    try:
        return table1_config(short)
    except KeyError:
        return FlowConfig()


@dataclasses.dataclass
class CornerSignoffResult:
    """Corner signoff across a circuit x technique x corner grid."""

    corners: tuple[str, ...]
    #: (circuit, technique) -> CornerOutcome, submission order.
    outcomes: dict[tuple[str, "Technique"], "CornerOutcome"]

    def outcome(self, circuit: str, technique: Technique) -> "CornerOutcome":
        return self.outcomes[(circuit, technique)]

    def as_dict(self) -> dict:
        from repro.api import schemas  # lazy: loads the registry

        return schemas.to_dict(self)

    def render(self) -> str:
        lines = [
            "Corner signoff (standby leakage nW / setup WNS ns)",
            f"{'Circuit':<10} {'Technique':<18} {'Corner':<16} "
            f"{'Leak(nW)':>12} {'xNominal':>9} {'WNS':>9}",
        ]
        for (circuit, technique), outcome in self.outcomes.items():
            base = outcome.nominal_leakage_nw or 1.0
            for row in outcome.rows:
                lines.append(
                    f"{circuit:<10} {technique.value:<18} {row.corner:<16} "
                    f"{row.leakage_nw:12.2f} {row.leakage_nw / base:9.2f} "
                    f"{row.wns:+9.4f}")
        return "\n".join(lines)


def run_table1_corners(circuits: tuple[str, ...] = ("A", "B"),
                       techniques=None,
                       corners: tuple[str, ...] | None = None,
                       config: FlowConfig | None = None,
                       library: Library | None = None,
                       jobs: int = 1) -> CornerSignoffResult:
    """Table 1 under PVT corners: every technique signed off per corner.

    .. deprecated:: delegates to
        :func:`repro.api.studies.corner_signoff_study`.

    The grid is ``circuits x techniques`` (one flow each, corners are
    evaluated inside the job), fanned out through the experiment
    runner; results are deterministic for any ``jobs``.
    """
    _deprecated("run_table1_corners")
    from repro.api.studies import corner_signoff_study

    return corner_signoff_study(
        _workspace(library), circuits=circuits, techniques=techniques,
        corners=corners, config=config, jobs=jobs)


@dataclasses.dataclass
class MonteCarloStudy:
    """Per-technique Monte-Carlo statistics on one circuit."""

    circuit: str
    samples: int
    seed: int
    corner: str | None
    #: technique -> (nominal leakage nW, nominal WNS | None, stats)
    results: dict["Technique", "McTechniqueResult"]

    def result(self, technique: Technique) -> "McTechniqueResult":
        return self.results[technique]

    def as_dict(self) -> dict:
        from repro.api import schemas  # lazy: loads the registry

        return schemas.to_dict(self)

    def render(self) -> str:
        where = f" @ {self.corner}" if self.corner else ""
        lines = [
            f"Monte-Carlo standby leakage on {self.circuit}{where} "
            f"({self.samples} samples, seed {self.seed})",
            f"{'Technique':<18} {'Nominal':>10} {'Mean':>10} {'Sigma':>10} "
            f"{'P95':>10} {'LeakYld':>8} {'TimYld':>7}",
        ]
        for technique, res in self.results.items():
            stats = res.statistics
            leak_yield = (f"{stats.leakage_yield:8.2f}"
                          if stats.leakage_yield is not None else "       -")
            timing_yield = (f"{stats.timing_yield:7.2f}"
                            if stats.timing_yield is not None else "      -")
            lines.append(
                f"{technique.value:<18} {res.nominal_leakage_nw:10.2f} "
                f"{stats.mean_nw:10.2f} {stats.std_nw:10.2f} "
                f"{stats.p95_nw:10.2f} {leak_yield} {timing_yield}")
        return "\n".join(lines)


@dataclasses.dataclass
class McTechniqueResult:
    """One technique's Monte-Carlo outcome."""

    nominal_leakage_nw: float
    nominal_wns: float | None
    area_um2: float
    statistics: "McStatistics"
    #: Per-die samples, for in-process consumers; excluded from
    #: equality (and from serialized payloads) — the statistics are
    #: the result's identity, and sample ``k`` is reproducible from
    #: ``(seed, k)`` anyway.
    samples: list = dataclasses.field(default_factory=list, compare=False)


def run_montecarlo(circuit: str = "A",
                   techniques=None,
                   samples: int = 64,
                   seed: int = 1,
                   sigma_global_v: float = 0.03,
                   sigma_local_v: float = 0.015,
                   timing: bool = True,
                   corner: str | None = None,
                   leakage_budget_nw: float | None = None,
                   config: FlowConfig | None = None,
                   library: Library | None = None,
                   jobs: int = 1) -> MonteCarloStudy:
    """Monte-Carlo leakage/timing study across techniques.

    .. deprecated:: delegates to
        :func:`repro.api.studies.montecarlo_study`.

    Samples are chunked across the experiment runner; since sample
    ``k`` is a pure function of ``(seed, k)``, the merged statistics
    are identical for any ``jobs`` setting.  The leakage-yield budget
    defaults to ``McConfig.budget_factor`` x each technique's own
    nominal leakage.
    """
    _deprecated("run_montecarlo")
    from repro.api.studies import montecarlo_study

    return montecarlo_study(
        _workspace(library), circuit=circuit, techniques=techniques,
        samples=samples, seed=seed, sigma_global_v=sigma_global_v,
        sigma_local_v=sigma_local_v, timing=timing, corner=corner,
        leakage_budget_nw=leakage_budget_nw, config=config, jobs=jobs)
