"""Pinned experiment definitions (the paper's evaluation).

Everything the benchmark harness needs to regenerate Table 1 lives
here: the per-circuit flow configurations (margins chosen so circuit A
is timing-tight and circuit B looser, as Table 1 implies) and the
paper's published numbers for comparison.
"""

from __future__ import annotations

import dataclasses

from repro.config import FlowConfig, Technique
from repro.core.compare import TechniqueComparison, compare_techniques
from repro.liberty.library import Library
from repro.liberty.synth import build_default_library
from repro.benchcircuits.suite import load_circuit

#: Paper Table 1 values, percent of the Dual-Vth baseline.
PAPER_TABLE1 = {
    ("A", Technique.DUAL_VTH): {"area": 100.00, "leakage": 100.00},
    ("A", Technique.CONVENTIONAL_SMT): {"area": 164.84, "leakage": 14.58},
    ("A", Technique.IMPROVED_SMT): {"area": 133.18, "leakage": 9.42},
    ("B", Technique.DUAL_VTH): {"area": 100.00, "leakage": 100.00},
    ("B", Technique.CONVENTIONAL_SMT): {"area": 142.22, "leakage": 19.42},
    ("B", Technique.IMPROVED_SMT): {"area": 115.65, "leakage": 12.21},
}


def table1_config(circuit: str) -> FlowConfig:
    """The pinned flow configuration for a Table 1 circuit."""
    if circuit in ("A", "circuitA"):
        return FlowConfig(timing_margin=0.09, utilization=0.75)
    if circuit in ("B", "circuitB"):
        return FlowConfig(timing_margin=0.10, utilization=0.75)
    raise KeyError(f"no Table 1 config for circuit {circuit!r}")


@dataclasses.dataclass
class Table1Result:
    """Both circuits' comparisons plus the paper reference."""

    comparisons: dict[str, TechniqueComparison]

    def measured(self, circuit: str, technique: Technique,
                 metric: str) -> float:
        row = self.comparisons[circuit].row(technique)
        return row.area_pct if metric == "area" else row.leakage_pct

    def paper(self, circuit: str, technique: Technique,
              metric: str) -> float:
        return PAPER_TABLE1[(circuit, technique)][metric]

    def render(self) -> str:
        lines = [
            "Table 1 reproduction (percent of Dual-Vth baseline)",
            f"{'Circuit':<8} {'Metric':<8} {'Technique':<18} "
            f"{'Paper':>8} {'Ours':>8}",
        ]
        for circuit in ("A", "B"):
            for metric in ("area", "leakage"):
                for technique in (Technique.DUAL_VTH,
                                  Technique.CONVENTIONAL_SMT,
                                  Technique.IMPROVED_SMT):
                    lines.append(
                        f"{circuit:<8} {metric:<8} {technique.value:<18} "
                        f"{self.paper(circuit, technique, metric):8.2f} "
                        f"{self.measured(circuit, technique, metric):8.2f}")
        return "\n".join(lines)


def run_table1(library: Library | None = None,
               circuits: tuple[str, ...] = ("A", "B"),
               jobs: int = 1) -> Table1Result:
    """Run the full Table 1 experiment (three flows per circuit).

    ``jobs > 1`` routes the whole circuit x technique grid through the
    process-pool experiment runner (identical numbers, parallel
    wall-clock; comparisons then carry rows only, not the full
    per-technique flow results).
    """
    library = library or build_default_library()
    comparisons: dict[str, TechniqueComparison] = {}
    if jobs > 1:
        from repro.runner import (
            ALL_TECHNIQUES,
            ExperimentRunner,
            FlowJob,
            comparison_from_outcomes,
        )

        flow_jobs = [FlowJob(circuit=f"circuit{short}", technique=technique,
                             config=table1_config(short))
                     for short in circuits for technique in ALL_TECHNIQUES]
        outcomes = ExperimentRunner(jobs=jobs, library=library).run(flow_jobs)
        per_circuit = len(ALL_TECHNIQUES)
        for index, short in enumerate(circuits):
            chunk = outcomes[index * per_circuit:(index + 1) * per_circuit]
            comparisons[short] = comparison_from_outcomes(short, chunk)
        return Table1Result(comparisons=comparisons)
    for short in circuits:
        name = f"circuit{short}"
        netlist = load_circuit(name)
        comparisons[short] = compare_techniques(
            netlist, library, table1_config(short), circuit_name=short)
    return Table1Result(comparisons=comparisons)
