"""Array view of a netlist: the structure the numpy kernels run on.

:class:`NetlistArrayView` lowers one (netlist, library, constraints,
net model) quadruple into flat numpy arrays once, then keeps them
alive across edits:

* **stable index maps** — instances in sorted-name order, timing nodes
  (nets in the STA domain) in the exact insertion order a scalar full
  propagation would create them, so array column ``i`` and dict entry
  ``i`` describe the same object;
* **CSR-style adjacency** — every timing-arc contribution (one
  ``consider()`` call of the scalar engine) becomes one row of a flat
  table, sorted by topological level with per-level segment offsets,
  so one level evaluates as one vectorized pass;
* **gathered Liberty coefficients** — every NLDM LUT referenced by an
  arc is registered in a :class:`LutStore` (stacked, padded tables) and
  arcs carry integer LUT ids.  (The Monte-Carlo engine gathers its own
  per-instance leakage/Vth coefficient vectors in the same sorted-name
  index order, so its derate matrices align with this view's columns.)

Invalidation contract (mirrors the
:class:`~repro.timing.session.TimingSession` dirt taxonomy):

* :meth:`touch_net` — only the net's capacitive load changed; the load
  vector entry is refreshed in place;
* :meth:`touch_instance` — the instance's timing tables changed (a
  variant swap); its contribution rows are re-gathered in place when
  the arc topology is unchanged, otherwise the view rebuilds;
* :meth:`touch_structural` — the graph changed shape (buffer
  insertion, removal); the next :meth:`ensure` rebuilds everything.

``ensure()`` is cheap when nothing is dirty, so callers invoke it
before every kernel pass.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TimingError
from repro.liberty.library import CellKind, Lut, VthClass
from repro.obs.spans import span

#: Sense codes used by the backward kernel.
SENSE_POSITIVE = 0
SENSE_NEGATIVE = 1
SENSE_NON_UNATE = 2

_SENSE_CODE = {
    "positive_unate": SENSE_POSITIVE,
    "negative_unate": SENSE_NEGATIVE,
}


def _delay_scale_class(cell) -> int:
    """Delay-scaling law of a cell's timing tables (0 = low-Vth, 1 = high).

    Mirrors :func:`repro.variation.corners._scaled_cell`: corner
    derivation scales *every* timing LUT of a cell by its own Vth
    class's delay factor.
    """
    return 1 if cell.vth_class == VthClass.HIGH else 0


class LutStore:
    """Stacked, padded NLDM tables addressed by integer id.

    ``lookup`` in :mod:`repro.compute.kernels` reproduces
    :meth:`repro.liberty.library.Lut.lookup` bit for bit: the same
    segment search (linear scan expressed as a comparison count), the
    same interpolation expressions, the same degenerate-axis handling.
    Axes are padded so every table shares one array shape:

    * the *search* axis holds ``+inf`` beyond the scan window (entries
      ``1 .. len-2``), so the vectorized comparison count can never
      step past the window;
    * the *interp* axis repeats its last real value, making the padded
      span zero, which the kernel maps to interpolation fraction 0.0 —
      exactly the scalar code's degenerate-segment answer.
    """

    def __init__(self):
        self._luts: list[Lut] = []
        self._ids: dict[tuple[int, int], int] = {}
        self._classes: list[int] = []
        self._arrays = None
        self._scale_classes = None
        self._frozen = False
        self._count = 0

    def register(self, lut: Lut | None, scale_class: int = 0) -> int:
        """The id of ``lut`` (registering it if new); -1 for ``None``.

        ``scale_class`` tags the table with the delay-scaling law of
        its owning cell (0 = low-Vth, 1 = high-Vth); the corner-stack
        path uses it to scale each table by the right per-corner
        factor.  A table shared by cells of *different* classes gets
        one id per class, so each copy scales by its own law — exactly
        what deriving K separate corner libraries would produce.
        """
        if lut is None:
            return -1
        key = (id(lut), scale_class)
        found = self._ids.get(key)
        if found is not None:
            return found
        if self._frozen:
            raise TimingError(
                "cannot register new LUTs in a cache-loaded store")
        index = len(self._luts)
        self._ids[key] = index
        self._luts.append(lut)
        self._classes.append(int(scale_class))
        self._arrays = None
        self._scale_classes = None
        return index

    def __len__(self) -> int:
        return self._count if self._frozen else len(self._luts)

    def arrays(self):
        """(search1, interp1, search2, interp2, values) stacked arrays."""
        if self._arrays is None:
            self._arrays = self._build()
        return self._arrays

    def scale_classes(self) -> np.ndarray:
        """Per-table delay scale-class codes, aligned with ``arrays()``."""
        if self._scale_classes is None:
            count = max(len(self._classes), 1)
            classes = np.zeros(count, dtype=np.int64)
            classes[:len(self._classes)] = self._classes
            self._scale_classes = classes
        return self._scale_classes

    @classmethod
    def from_arrays(cls, arrays, scale_classes, count: int) -> "LutStore":
        """A frozen store over pre-built arrays (lowering-cache load).

        Frozen stores serve ``arrays()``/``scale_classes()`` but refuse
        new registrations — a view loaded from the cache rebuilds
        instead of patching in place.
        """
        store = cls()
        store._arrays = tuple(arrays)
        store._scale_classes = np.asarray(scale_classes, dtype=np.int64)
        store._count = int(count)
        store._frozen = True
        return store

    def _build(self):
        count = max(len(self._luts), 1)
        dim1 = max([len(l.index_1) for l in self._luts] + [1])
        dim2 = max([len(l.index_2) for l in self._luts] + [1])
        dim1 = max(dim1, 2)
        dim2 = max(dim2, 2)
        search1 = np.full((count, dim1), np.inf)
        interp1 = np.zeros((count, dim1))
        search2 = np.full((count, dim2), np.inf)
        interp2 = np.zeros((count, dim2))
        values = np.zeros((count, dim1, dim2))
        for index, lut in enumerate(self._luts):
            _fill_axis(search1[index], interp1[index], lut.index_1)
            _fill_axis(search2[index], interp2[index], lut.index_2)
            table = np.asarray(lut.values, dtype=float)
            values[index, :table.shape[0], :table.shape[1]] = table
            # Edge-replicate so padded cells stay finite (they are
            # always multiplied by a zero fraction).
            values[index, table.shape[0]:, :] = values[
                index, table.shape[0] - 1, :]
            values[index, :, table.shape[1]:] = values[
                index, :, table.shape[1] - 1:table.shape[1]]
        return search1, interp1, search2, interp2, values


def _fill_axis(search_row: np.ndarray, interp_row: np.ndarray,
               axis: tuple[float, ...]):
    n = len(axis)
    hi = n - 1
    # Scan window: the scalar loop compares x against axis[1..hi-1].
    if hi >= 2:
        search_row[1:hi] = axis[1:hi]
    interp_row[:n] = axis
    interp_row[n:] = axis[-1]


class _Stream:
    """One forward contribution stream (rise-target or fall-target)."""

    __slots__ = ("out", "src", "inst", "src_edge", "dlut", "slut", "wire",
                 "levels", "size")

    def __init__(self, rows, level_of):
        # rows: list of [out, src, inst, src_edge, dlut, slut, wire]
        self.size = len(rows)
        if rows:
            out = np.array([r[0] for r in rows], dtype=np.int64)
            src = np.array([r[1] for r in rows], dtype=np.int64)
            inst = np.array([r[2] for r in rows], dtype=np.int64)
            edge = np.array([r[3] for r in rows], dtype=np.int64)
            dlut = np.array([r[4] for r in rows], dtype=np.int64)
            slut = np.array([r[5] for r in rows], dtype=np.int64)
            wire = np.array([r[6] for r in rows], dtype=float)
            levels = level_of[inst]
            perm = np.argsort(levels, kind="stable")
        else:
            out = src = inst = edge = dlut = slut = np.zeros(0, np.int64)
            wire = np.zeros(0)
            levels = np.zeros(0, np.int64)
            perm = np.zeros(0, np.int64)
        self.out = out[perm]
        self.src = src[perm]
        self.inst = inst[perm]
        self.src_edge = edge[perm]
        self.dlut = dlut[perm]
        self.slut = slut[perm]
        self.wire = wire[perm]
        self.levels = _level_slices(levels[perm], self.out)


def _level_slices(sorted_levels: np.ndarray, out: np.ndarray):
    """[(level, start, stop, seg_starts, seg_out)] for a sorted table."""
    slices = []
    n = len(sorted_levels)
    if n == 0:
        return slices
    boundaries = [0] + list(
        np.nonzero(np.diff(sorted_levels))[0] + 1) + [n]
    for lo, hi in zip(boundaries[:-1], boundaries[1:]):
        seg_out = out[lo:hi]
        change = np.nonzero(np.diff(seg_out))[0] + 1
        seg_starts = np.concatenate(
            ([0], change)).astype(np.int64)
        slices.append((int(sorted_levels[lo]), lo, hi, seg_starts,
                       seg_out[seg_starts]))
    return slices


class _BackwardStream:
    """Backward (required-time) arc table, level-descending."""

    __slots__ = ("out", "src", "inst", "sense", "rlut", "flut", "wire",
                 "levels")

    def __init__(self, rows, level_of):
        if rows:
            out = np.array([r[0] for r in rows], dtype=np.int64)
            src = np.array([r[1] for r in rows], dtype=np.int64)
            inst = np.array([r[2] for r in rows], dtype=np.int64)
            sense = np.array([r[3] for r in rows], dtype=np.int64)
            rlut = np.array([r[4] for r in rows], dtype=np.int64)
            flut = np.array([r[5] for r in rows], dtype=np.int64)
            wire = np.array([r[6] for r in rows], dtype=float)
            levels = level_of[inst]
            # Descending level; within a level group by source net so
            # the min-reduction segments are contiguous.
            perm = np.lexsort((src, -levels))
        else:
            out = src = inst = sense = rlut = flut = np.zeros(0, np.int64)
            wire = np.zeros(0)
            levels = np.zeros(0, np.int64)
            perm = np.zeros(0, np.int64)
        self.out = out[perm]
        self.src = src[perm]
        self.inst = inst[perm]
        self.sense = sense[perm]
        self.rlut = rlut[perm]
        self.flut = flut[perm]
        self.wire = wire[perm]
        self.levels = _bwd_level_slices(levels[perm], self.src) \
            if len(perm) else []


def _bwd_level_slices(sorted_desc_levels: np.ndarray, src: np.ndarray):
    slices = []
    n = len(sorted_desc_levels)
    boundaries = [0] + list(
        np.nonzero(np.diff(sorted_desc_levels))[0] + 1) + [n]
    for lo, hi in zip(boundaries[:-1], boundaries[1:]):
        seg_src = src[lo:hi]
        change = np.nonzero(np.diff(seg_src))[0] + 1
        seg_starts = np.concatenate(([0], change)).astype(np.int64)
        slices.append((lo, hi, seg_starts, seg_src[seg_starts]))
    return slices


def _str_array(names) -> np.ndarray:
    return np.array(names, dtype=np.str_) if names \
        else np.zeros(0, dtype="U1")


def _stream_levels(stream: "_Stream") -> np.ndarray:
    """Recover the level-sorted per-row level array from the slices."""
    levels = np.zeros(len(stream.out), dtype=np.int64)
    for level, lo, hi, _starts, _out in stream.levels:
        levels[lo:hi] = level
    return levels


def _bwd_group_codes(bwd: "_BackwardStream") -> np.ndarray:
    """Strictly-descending group codes reproducing the bwd slices.

    The backward slices only use level *boundaries*, never the level
    values, so any strictly-descending code sequence round-trips.
    """
    codes = np.zeros(len(bwd.out), dtype=np.int64)
    groups = len(bwd.levels)
    for g, (lo, hi, _starts, _src) in enumerate(bwd.levels):
        codes[lo:hi] = groups - g
    return codes


def _stream_from_state(state, tag: str) -> "_Stream":
    stream = _Stream.__new__(_Stream)
    stream.out = state[f"{tag}_out"]
    stream.src = state[f"{tag}_src"]
    stream.inst = state[f"{tag}_inst"]
    stream.src_edge = state[f"{tag}_edge"]
    stream.dlut = state[f"{tag}_dlut"]
    stream.slut = state[f"{tag}_slut"]
    stream.wire = state[f"{tag}_wire"]
    stream.size = len(stream.out)
    stream.levels = _level_slices(state[f"{tag}_levels"], stream.out)
    return stream


def _bwd_from_state(state) -> "_BackwardStream":
    bwd = _BackwardStream.__new__(_BackwardStream)
    bwd.out = state["bwd_out"]
    bwd.src = state["bwd_src"]
    bwd.inst = state["bwd_inst"]
    bwd.sense = state["bwd_sense"]
    bwd.rlut = state["bwd_rlut"]
    bwd.flut = state["bwd_flut"]
    bwd.wire = state["bwd_wire"]
    bwd.levels = _bwd_level_slices(state["bwd_levels"], bwd.src) \
        if len(bwd.out) else []
    return bwd


class NetlistArrayView:
    """Flat array mirror of one netlist for the numpy kernels."""

    def __init__(self, netlist, library, constraints, net_model,
                 clock_arrivals=None):
        self.netlist = netlist
        self.library = library
        self.constraints = constraints
        self.net_model = net_model
        self.clock_arrivals = dict(clock_arrivals or {})
        self._built = False
        self._structural_dirty = True
        self._dirty_loads: set[str] = set()
        self._dirty_insts: set[str] = set()
        self.rebuilds = 0
        self.patches = 0

    # --- classification (mirrors TimingSession) ------------------------

    def _is_seq(self, inst) -> bool:
        return (inst.cell_name in self.library
                and self.library.cell(inst.cell_name).is_sequential)

    def _skip(self, inst) -> bool:
        if inst.cell_name not in self.library:
            return True
        kind = self.library.cell(inst.cell_name).kind
        return kind in (CellKind.SWITCH, CellKind.HOLDER)

    # --- invalidation ---------------------------------------------------

    def touch_net(self, name: str):
        """The net's capacitive load changed."""
        if self._built:
            self._dirty_loads.add(name)

    def touch_instance(self, name: str):
        """The instance's timing tables changed (variant swap)."""
        if self._built:
            self._dirty_insts.add(name)

    def touch_structural(self):
        """The netlist graph changed shape: full rebuild next ensure."""
        self._structural_dirty = True

    @property
    def dirty(self) -> bool:
        return (self._structural_dirty or not self._built
                or bool(self._dirty_insts) or bool(self._dirty_loads))

    def ensure(self) -> "NetlistArrayView":
        """Apply pending invalidations; afterwards the arrays are current."""
        if self._structural_dirty or not self._built:
            self._rebuild()
            return self
        if self._dirty_insts:
            if not self._patch_instances():
                self._rebuild()
                return self
            self._dirty_insts.clear()
        if self._dirty_loads:
            self._refresh_loads()
        return self

    # --- build ----------------------------------------------------------

    def _rebuild(self):
        with span("compute.lower",
                  instances=len(self.netlist.instances)) as sp:
            self._rebuild_arrays()
            sp.set(nodes=len(self.node_names),
                   comb_instances=self.comb_count)

    def _rebuild_arrays(self):
        self.rebuilds += 1
        netlist, library = self.netlist, self.library
        constraints = self.constraints

        order = netlist.topological_order(self._is_seq)

        # Node domain, in the exact insertion order of a scalar full
        # run: input-port nets, flip-flop Q nets, comb out nets (topo).
        node_names: list[str] = []
        node_index: dict[str, int] = {}

        def add_node(name: str) -> int:
            idx = node_index.get(name)
            if idx is None:
                idx = len(node_names)
                node_index[name] = idx
                node_names.append(name)
            return idx

        input_ports = [p for p in netlist.input_ports() if p.net is not None]
        for port in input_ports:
            add_node(port.net.name)
        seq_insts = [inst for inst in netlist.instances.values()
                     if self._is_seq(inst)]
        for inst in seq_insts:
            q_pin = inst.pins.get("Q")
            if q_pin is not None and q_pin.net is not None:
                add_node(q_pin.net.name)
        comb_order = [inst for inst in order
                      if not self._is_seq(inst) and not self._skip(inst)]
        for inst in comb_order:
            cell = library.cell(inst.cell_name)
            for out_pin in inst.output_pins():
                if out_pin.net is not None and out_pin.name in cell.pins:
                    add_node(out_pin.net.name)

        inst_names = sorted(netlist.instances)
        inst_index = {name: i for i, name in enumerate(inst_names)}

        # Topological levels (per instance; startpoint nets are level 0).
        net_level: dict[int, int] = {}
        for port in input_ports:
            net_level[node_index[port.net.name]] = 0
        for inst in seq_insts:
            q_pin = inst.pins.get("Q")
            if q_pin is not None and q_pin.net is not None:
                net_level[node_index[q_pin.net.name]] = 0
        level_of = np.zeros(len(inst_names), dtype=np.int64)
        for inst in comb_order:
            best = 0
            for in_pin in inst.input_pins():
                if in_pin.net is None or in_pin.name == "MTE":
                    continue
                sidx = node_index.get(in_pin.net.name)
                if sidx is not None:
                    best = max(best, net_level.get(sidx, 0))
            lvl = best + 1
            level_of[inst_index[inst.name]] = lvl
            cell = library.cell(inst.cell_name)
            for out_pin in inst.output_pins():
                if out_pin.net is not None and out_pin.name in cell.pins:
                    net_level[node_index[out_pin.net.name]] = lvl

        luts = LutStore()
        rise_rows: list[list] = []
        fall_rows: list[list] = []
        bwd_rows: list[list] = []
        inst_sig: dict[str, list] = {}

        for inst in comb_order:
            signature = self._gather_instance(
                inst, node_index, inst_index, luts,
                rise_rows, fall_rows, bwd_rows)
            inst_sig[inst.name] = signature

        self.node_names = node_names
        self.node_index = node_index
        self.inst_names = inst_names
        self.inst_index = inst_index
        self.comb_count = len(comb_order)
        self.luts = luts
        self.rise = _Stream(rise_rows, level_of)
        self.fall = _Stream(fall_rows, level_of)
        self.bwd = _BackwardStream(bwd_rows, level_of)
        # Row permutations: _gather_instance recorded build-order row
        # ids; map them through the level sort so patches hit the
        # stored rows.
        self._finalize_row_maps(rise_rows, fall_rows, level_of, inst_sig)

        self.loads = np.zeros(len(node_names))
        for name, idx in node_index.items():
            net = netlist.nets.get(name)
            if net is not None:
                self.loads[idx] = self.net_model.total_load(net)

        # Startpoints.
        self.port_nodes = np.array(
            [node_index[p.net.name] for p in input_ports], dtype=np.int64)
        self.port_delay = np.array(
            [constraints.input_delay_for(p.name) for p in input_ports])
        self.port_min = np.array(
            [max(constraints.input_delay_for(p.name),
                 constraints.input_delay_min) for p in input_ports])
        ff_node, ff_inst, ff_launch = [], [], []
        ff_cr, ff_cf, ff_rt, ff_ft = [], [], [], []
        for inst in seq_insts:
            q_pin = inst.pins.get("Q")
            if q_pin is None or q_pin.net is None:
                continue
            cell = library.cell(inst.cell_name)
            arc = cell.pin("Q").arc_from("CK")
            if arc is None:
                raise TimingError(f"flip-flop {cell.name} lacks CK->Q arc")
            klass = _delay_scale_class(cell)
            ff_node.append(node_index[q_pin.net.name])
            ff_inst.append(inst_index[inst.name])
            ff_launch.append(self.clock_arrivals.get(inst.name, 0.0))
            ff_cr.append(luts.register(arc.cell_rise, klass))
            ff_cf.append(luts.register(arc.cell_fall, klass))
            ff_rt.append(luts.register(arc.rise_transition, klass))
            ff_ft.append(luts.register(arc.fall_transition, klass))
        self.ff_node = np.array(ff_node, dtype=np.int64)
        self.ff_inst = np.array(ff_inst, dtype=np.int64)
        self.ff_launch = np.array(ff_launch)
        self.ff_cr = np.array(ff_cr, dtype=np.int64)
        self.ff_cf = np.array(ff_cf, dtype=np.int64)
        self.ff_rt = np.array(ff_rt, dtype=np.int64)
        self.ff_ft = np.array(ff_ft, dtype=np.int64)

        # Endpoints (python check-list order: output ports, then per-FF
        # setup+hold).
        self.out_ep_names: list[str] = []
        out_ep_node, out_ep_wire, out_ep_delay = [], [], []
        for port in netlist.output_ports():
            if port.net is None or port.net.name not in node_index:
                continue
            self.out_ep_names.append(port.name)
            out_ep_node.append(node_index[port.net.name])
            out_ep_wire.append(
                self.net_model.wire_delay_to_port(port.net, port.name))
            out_ep_delay.append(constraints.output_delay_for(port.name))
        self.out_ep_node = np.array(out_ep_node, dtype=np.int64)
        self.out_ep_wire = np.array(out_ep_wire)
        self.out_ep_delay = np.array(out_ep_delay)

        self.ff_ep_names: list[str] = []
        ff_ep_node, ff_ep_wire = [], []
        ff_ep_setup, ff_ep_hold, ff_ep_clk = [], [], []
        for inst in seq_insts:
            d_pin = inst.pins.get("D")
            if d_pin is None or d_pin.net is None \
                    or d_pin.net.name not in node_index:
                continue
            cell = library.cell(inst.cell_name)
            self.ff_ep_names.append(inst.name)
            ff_ep_node.append(node_index[d_pin.net.name])
            ff_ep_wire.append(self.net_model.wire_delay(d_pin.net, d_pin))
            ff_ep_setup.append(self._constraint_value(cell, "setup"))
            ff_ep_hold.append(self._constraint_value(cell, "hold"))
            ff_ep_clk.append(self.clock_arrivals.get(inst.name, 0.0))
        self.ff_ep_node = np.array(ff_ep_node, dtype=np.int64)
        self.ff_ep_wire = np.array(ff_ep_wire)
        self.ff_ep_setup = np.array(ff_ep_setup)
        self.ff_ep_hold = np.array(ff_ep_hold)
        self.ff_ep_clk = np.array(ff_ep_clk)

        self._inst_sig = inst_sig
        self._built = True
        self._structural_dirty = False
        self._dirty_loads.clear()
        self._dirty_insts.clear()

    def _gather_instance(self, inst, node_index, inst_index, luts,
                         rise_rows, fall_rows, bwd_rows) -> list:
        """Append one instance's contributions; returns its signature.

        The signature is the arc topology — (out, src, src_edge) per
        stream plus the backward row count — used by
        :meth:`_patch_instances` to decide whether an in-place LUT-id
        rewrite is sound after a variant swap.
        """
        library = self.library
        cell = library.cell(inst.cell_name)
        klass = _delay_scale_class(cell)
        iidx = inst_index[inst.name]
        sig: list = []
        my_rise: list[int] = []
        my_fall: list[int] = []
        my_bwd: list[int] = []
        for out_pin in inst.output_pins():
            out_net = out_pin.net
            if out_net is None:
                continue
            lib_out = cell.pins.get(out_pin.name)
            if lib_out is None:
                continue
            oidx = node_index[out_net.name]
            for in_pin in inst.input_pins():
                if in_pin.net is None or in_pin.name == "MTE":
                    continue
                arc = lib_out.arc_from(in_pin.name)
                if arc is None:
                    continue
                sidx = node_index.get(in_pin.net.name)
                if sidx is None:
                    continue
                wire = self.net_model.wire_delay(in_pin.net, in_pin)
                sense = _SENSE_CODE.get(arc.timing_sense, SENSE_NON_UNATE)
                if sense == SENSE_POSITIVE:
                    pairs = (
                        (rise_rows, my_rise, 0, arc.cell_rise,
                         arc.rise_transition),
                        (fall_rows, my_fall, 1, arc.cell_fall,
                         arc.fall_transition),
                    )
                elif sense == SENSE_NEGATIVE:
                    pairs = (
                        (rise_rows, my_rise, 1, arc.cell_rise,
                         arc.rise_transition),
                        (fall_rows, my_fall, 0, arc.cell_fall,
                         arc.fall_transition),
                    )
                else:
                    pairs = (
                        (rise_rows, my_rise, 0, arc.cell_rise,
                         arc.rise_transition),
                        (fall_rows, my_fall, 0, arc.cell_fall,
                         arc.fall_transition),
                        (rise_rows, my_rise, 1, arc.cell_rise,
                         arc.rise_transition),
                        (fall_rows, my_fall, 1, arc.cell_fall,
                         arc.fall_transition),
                    )
                for rows, mine, edge, delay_lut, slew_lut in pairs:
                    if delay_lut is None:
                        continue
                    mine.append(len(rows))
                    rows.append([oidx, sidx, iidx, edge,
                                 luts.register(delay_lut, klass),
                                 luts.register(slew_lut, klass), wire])
                my_bwd.append(len(bwd_rows))
                bwd_rows.append([oidx, sidx, iidx, sense,
                                 luts.register(arc.cell_rise, klass),
                                 luts.register(arc.cell_fall, klass), wire])
                sig.append((oidx, sidx, sense,
                            arc.cell_rise is not None,
                            arc.cell_fall is not None))
        return [sig, my_rise, my_fall, my_bwd]

    def _finalize_row_maps(self, rise_rows, fall_rows, level_of, inst_sig):
        """Map build-order row ids to post-sort storage positions.

        Uses the same stable sort key as :class:`_Stream`, so the
        inverse permutation points at the stored rows.  Backward rows
        are re-located by (instance, out, src) at patch time instead.
        """
        def inverse_perm(rows):
            if not rows:
                return np.zeros(0, np.int64)
            inst = np.array([r[2] for r in rows], dtype=np.int64)
            perm = np.argsort(level_of[inst], kind="stable")
            inverse = np.empty_like(perm)
            inverse[perm] = np.arange(len(perm))
            return inverse

        inv_rise = inverse_perm(rise_rows)
        inv_fall = inverse_perm(fall_rows)
        for entry in inst_sig.values():
            entry[1] = [int(inv_rise[r]) for r in entry[1]]
            entry[2] = [int(inv_fall[r]) for r in entry[2]]

    # --- incremental refresh -------------------------------------------

    def _refresh_loads(self):
        for name in self._dirty_loads:
            idx = self.node_index.get(name)
            if idx is None:
                continue
            net = self.netlist.nets.get(name)
            if net is not None:
                self.loads[idx] = self.net_model.total_load(net)
        self._dirty_loads.clear()

    def _patch_instances(self) -> bool:
        """Re-gather LUT ids for dirty instances in place.

        Sound only when the arc topology (out/src/sense pattern) is
        unchanged — a variant swap between siblings of the same base
        cell.  Any mismatch (different arcs, a sequential or skip cell,
        an unknown instance) reports False and the caller rebuilds.
        """
        for name in sorted(self._dirty_insts):
            entry = self._inst_sig.get(name)
            inst = self.netlist.instances.get(name)
            if inst is None:
                return False
            if self._is_seq(inst) or self._skip(inst):
                return False
            if entry is None:
                return False
            if not self._patch_one(inst, entry):
                return False
        self.patches += len(self._dirty_insts)
        return True

    def _patch_one(self, inst, entry) -> bool:
        old_sig, my_rise, my_fall, _my_bwd = entry
        library = self.library
        cell = library.cell(inst.cell_name)
        klass = _delay_scale_class(cell)
        new_sig = []
        rise_updates: list[tuple[int, int]] = []
        fall_updates: list[tuple[int, int]] = []
        for out_pin in inst.output_pins():
            out_net = out_pin.net
            if out_net is None:
                continue
            lib_out = cell.pins.get(out_pin.name)
            if lib_out is None:
                continue
            oidx = self.node_index.get(out_net.name)
            if oidx is None:
                return False
            for in_pin in inst.input_pins():
                if in_pin.net is None or in_pin.name == "MTE":
                    continue
                arc = lib_out.arc_from(in_pin.name)
                if arc is None:
                    continue
                sidx = self.node_index.get(in_pin.net.name)
                if sidx is None:
                    continue
                sense = _SENSE_CODE.get(arc.timing_sense, SENSE_NON_UNATE)
                new_sig.append((oidx, sidx, sense,
                                arc.cell_rise is not None,
                                arc.cell_fall is not None))
                reps = 2 if sense == SENSE_NON_UNATE else 1
                for _ in range(reps):
                    if arc.cell_rise is not None:
                        rise_updates.append(
                            (self.luts.register(arc.cell_rise, klass),
                             self.luts.register(arc.rise_transition,
                                                klass)))
                    if arc.cell_fall is not None:
                        fall_updates.append(
                            (self.luts.register(arc.cell_fall, klass),
                             self.luts.register(arc.fall_transition,
                                                klass)))
        if new_sig != old_sig:
            return False
        if len(rise_updates) != len(my_rise) \
                or len(fall_updates) != len(my_fall):
            return False
        for row, (dlut, slut) in zip(my_rise, rise_updates):
            self.rise.dlut[row] = dlut
            self.rise.slut[row] = slut
        for row, (dlut, slut) in zip(my_fall, fall_updates):
            self.fall.dlut[row] = dlut
            self.fall.slut[row] = slut
        # Backward rows: locate by (inst, out, src) — unique per arc.
        iidx = self.inst_index[inst.name]
        mask = self.bwd.inst == iidx
        rows = np.nonzero(mask)[0]
        arcs_by_key = {}
        for out_pin in inst.output_pins():
            if out_pin.net is None:
                continue
            lib_out = cell.pins.get(out_pin.name)
            if lib_out is None:
                continue
            for in_pin in inst.input_pins():
                if in_pin.net is None or in_pin.name == "MTE":
                    continue
                arc = lib_out.arc_from(in_pin.name)
                if arc is None:
                    continue
                oidx = self.node_index.get(out_pin.net.name)
                sidx = self.node_index.get(in_pin.net.name)
                if oidx is None or sidx is None:
                    continue
                arcs_by_key[(oidx, sidx)] = arc
        if len(rows) != len(arcs_by_key):
            return False
        for row in rows:
            key = (int(self.bwd.out[row]), int(self.bwd.src[row]))
            arc = arcs_by_key.get(key)
            if arc is None:
                return False
            self.bwd.rlut[row] = self.luts.register(arc.cell_rise, klass)
            self.bwd.flut[row] = self.luts.register(arc.cell_fall, klass)
        return True

    # --- helpers --------------------------------------------------------

    def _constraint_value(self, cell, which: str) -> float:
        from repro.timing.sta import cell_constraint_value

        return cell_constraint_value(cell, which, self.constraints.input_slew)

    def derate_vector(self, derates) -> np.ndarray:
        """Per-instance derate vector (sorted-name index order)."""
        vec = np.ones(len(self.inst_names))
        if derates:
            index = self.inst_index
            for name, value in derates.items():
                idx = index.get(name)
                if idx is not None:
                    vec[idx] = value
        return vec

    # --- corner stacking ------------------------------------------------

    def corner_stack(self, delay_factors) -> tuple:
        """LUT arrays with a leading corner (batch) axis.

        ``delay_factors`` is ``(corners, 2)``: column 0 the low-Vth
        delay factor, column 1 the high-Vth one.  Each stacked table is
        the nominal table times its scale class's factor — the same
        elementwise multiply :meth:`repro.liberty.library.Lut.scaled`
        performs — so interpolating the stack reproduces a lowering of
        the corner-derived library bit for bit, without re-lowering.
        """
        self.ensure()
        search1, interp1, search2, interp2, values = self.luts.arrays()
        factors = np.asarray(delay_factors, dtype=float)
        per_table = factors[:, self.luts.scale_classes()]
        stacked = values[None, ...] * per_table[:, :, None, None]
        return (search1, interp1, search2, interp2, stacked)

    # --- (de)serialization for the on-disk lowering cache ---------------

    def export_state(self) -> dict:
        """All built arrays as a flat name->array dict (npz-ready)."""
        self.ensure()
        search1, interp1, search2, interp2, values = self.luts.arrays()
        state = {
            "node_names": _str_array(self.node_names),
            "inst_names": _str_array(self.inst_names),
            "comb_count": np.int64(self.comb_count),
            "loads": self.loads,
            "lut_count": np.int64(len(self.luts)),
            "lut_classes": self.luts.scale_classes(),
            "lut_search1": search1, "lut_interp1": interp1,
            "lut_search2": search2, "lut_interp2": interp2,
            "lut_values": values,
            "port_nodes": self.port_nodes,
            "port_delay": self.port_delay,
            "port_min": self.port_min,
            "ff_node": self.ff_node, "ff_inst": self.ff_inst,
            "ff_launch": self.ff_launch,
            "ff_cr": self.ff_cr, "ff_cf": self.ff_cf,
            "ff_rt": self.ff_rt, "ff_ft": self.ff_ft,
            "out_ep_names": _str_array(self.out_ep_names),
            "out_ep_node": self.out_ep_node,
            "out_ep_wire": self.out_ep_wire,
            "out_ep_delay": self.out_ep_delay,
            "ff_ep_names": _str_array(self.ff_ep_names),
            "ff_ep_node": self.ff_ep_node,
            "ff_ep_wire": self.ff_ep_wire,
            "ff_ep_setup": self.ff_ep_setup,
            "ff_ep_hold": self.ff_ep_hold,
            "ff_ep_clk": self.ff_ep_clk,
        }
        for tag, stream in (("rise", self.rise), ("fall", self.fall)):
            state[f"{tag}_out"] = stream.out
            state[f"{tag}_src"] = stream.src
            state[f"{tag}_inst"] = stream.inst
            state[f"{tag}_edge"] = stream.src_edge
            state[f"{tag}_dlut"] = stream.dlut
            state[f"{tag}_slut"] = stream.slut
            state[f"{tag}_wire"] = stream.wire
            state[f"{tag}_levels"] = _stream_levels(stream)
        state["bwd_out"] = self.bwd.out
        state["bwd_src"] = self.bwd.src
        state["bwd_inst"] = self.bwd.inst
        state["bwd_sense"] = self.bwd.sense
        state["bwd_rlut"] = self.bwd.rlut
        state["bwd_flut"] = self.bwd.flut
        state["bwd_wire"] = self.bwd.wire
        state["bwd_levels"] = _bwd_group_codes(self.bwd)
        return state

    @classmethod
    def from_state(cls, state, netlist, library, constraints, net_model,
                   clock_arrivals=None) -> "NetlistArrayView":
        """Rehydrate a view from :meth:`export_state` arrays.

        The loaded view serves kernels immediately (no lowering pass)
        and honors ``touch_net`` load refreshes; instance patches are
        refused (``_patch_instances`` reports False), so a variant swap
        falls back to a normal rebuild against the live netlist.
        """
        view = cls(netlist, library, constraints, net_model,
                   clock_arrivals)
        view.node_names = [str(s) for s in state["node_names"]]
        view.node_index = {n: i for i, n in enumerate(view.node_names)}
        view.inst_names = [str(s) for s in state["inst_names"]]
        view.inst_index = {n: i for i, n in enumerate(view.inst_names)}
        view.comb_count = int(state["comb_count"])
        view.loads = state["loads"]
        view.luts = LutStore.from_arrays(
            (state["lut_search1"], state["lut_interp1"],
             state["lut_search2"], state["lut_interp2"],
             state["lut_values"]),
            state["lut_classes"], int(state["lut_count"]))
        view.rise = _stream_from_state(state, "rise")
        view.fall = _stream_from_state(state, "fall")
        view.bwd = _bwd_from_state(state)
        view.port_nodes = state["port_nodes"]
        view.port_delay = state["port_delay"]
        view.port_min = state["port_min"]
        view.ff_node = state["ff_node"]
        view.ff_inst = state["ff_inst"]
        view.ff_launch = state["ff_launch"]
        view.ff_cr = state["ff_cr"]
        view.ff_cf = state["ff_cf"]
        view.ff_rt = state["ff_rt"]
        view.ff_ft = state["ff_ft"]
        view.out_ep_names = [str(s) for s in state["out_ep_names"]]
        view.out_ep_node = state["out_ep_node"]
        view.out_ep_wire = state["out_ep_wire"]
        view.out_ep_delay = state["out_ep_delay"]
        view.ff_ep_names = [str(s) for s in state["ff_ep_names"]]
        view.ff_ep_node = state["ff_ep_node"]
        view.ff_ep_wire = state["ff_ep_wire"]
        view.ff_ep_setup = state["ff_ep_setup"]
        view.ff_ep_hold = state["ff_ep_hold"]
        view.ff_ep_clk = state["ff_ep_clk"]
        view._inst_sig = {}
        view._built = True
        view._structural_dirty = False
        return view
