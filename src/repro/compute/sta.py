"""Full-STA driver on the numpy backend.

:func:`run_full` performs one complete forward + backward propagation
through the array kernels and materializes the result in the scalar
engine's native shapes — a ``{net: NodeTiming}`` dict (in the exact
insertion order a scalar full run would produce) and the
``EndpointCheck`` list (same check order) — so
:class:`~repro.timing.session.TimingSession` can swap it in for its
scalar ``_full_run`` and every downstream consumer (incremental
re-propagation, path tracing, report rendering) keeps working
unchanged.
"""

from __future__ import annotations

from repro.compute.kernels import backward, forward
from repro.compute.view import NetlistArrayView
from repro.timing.sta import EndpointCheck, NodeTiming


def run_full(view: NetlistArrayView, derates
             ) -> tuple[dict[str, NodeTiming], list[EndpointCheck]]:
    """One full propagation; returns (node dict, endpoint checks)."""
    view.ensure()
    vec = view.derate_vector(derates)[None, :]
    fwd = forward(view, vec, track_winners=True)
    req_rise, req_fall = backward(view, fwd, vec)

    arr_rise = fwd.arr_rise[0].tolist()
    arr_fall = fwd.arr_fall[0].tolist()
    min_rise = fwd.min_rise[0].tolist()
    min_fall = fwd.min_fall[0].tolist()
    slew_rise = fwd.slew_rise[0].tolist()
    slew_fall = fwd.slew_fall[0].tolist()
    req_rise = req_rise[0].tolist()
    req_fall = req_fall[0].tolist()
    win_rise = fwd.win_rise.tolist()
    win_fall = fwd.win_fall.tolist()

    node_names = view.node_names
    inst_names = view.inst_names
    rise_src, rise_inst = view.rise.src, view.rise.inst
    fall_src, fall_inst = view.fall.src, view.fall.inst

    nodes: dict[str, NodeTiming] = {}
    for idx, name in enumerate(node_names):
        entry = NodeTiming(
            arr_rise=arr_rise[idx], arr_fall=arr_fall[idx],
            min_rise=min_rise[idx], min_fall=min_fall[idx],
            slew_rise=slew_rise[idx], slew_fall=slew_fall[idx],
            req_rise=req_rise[idx], req_fall=req_fall[idx])
        row = win_rise[idx]
        if row >= 0:
            entry.prev_rise = (node_names[rise_src[row]],
                               inst_names[rise_inst[row]])
        row = win_fall[idx]
        if row >= 0:
            entry.prev_fall = (node_names[fall_src[row]],
                               inst_names[fall_inst[row]])
        nodes[name] = entry

    checks = _endpoint_checks(view, nodes)
    return nodes, checks


def _endpoint_checks(view: NetlistArrayView,
                     nodes: dict[str, NodeTiming]) -> list[EndpointCheck]:
    """Endpoint checks from materialized nodes, scalar arithmetic."""
    period = view.constraints.clock_period
    node_names = view.node_names
    checks: list[EndpointCheck] = []
    for k, port_name in enumerate(view.out_ep_names):
        entry = nodes[node_names[view.out_ep_node[k]]]
        wire = float(view.out_ep_wire[k])
        required = period - float(view.out_ep_delay[k]) - wire
        arrival = entry.arrival + wire
        checks.append(EndpointCheck(
            endpoint=port_name, kind="output",
            slack=required + wire - arrival,
            arrival=arrival, required=required + wire))
    for k, inst_name in enumerate(view.ff_ep_names):
        entry = nodes[node_names[view.ff_ep_node[k]]]
        wire = float(view.ff_ep_wire[k])
        capture = period + float(view.ff_ep_clk[k])
        setup = float(view.ff_ep_setup[k])
        hold = float(view.ff_ep_hold[k])
        arrival = entry.arrival + wire
        checks.append(EndpointCheck(
            endpoint=f"{inst_name}/D", kind="setup",
            slack=capture - setup - arrival,
            arrival=arrival, required=capture - setup))
        min_arrival = entry.min_arrival + wire
        hold_required = float(view.ff_ep_clk[k]) + hold
        checks.append(EndpointCheck(
            endpoint=f"{inst_name}/D", kind="hold",
            slack=min_arrival - hold_required,
            arrival=min_arrival, required=hold_required))
    return checks
