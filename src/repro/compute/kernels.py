"""NumPy kernels over a :class:`~repro.compute.view.NetlistArrayView`.

Every kernel carries a leading **sample axis**: state arrays are
``(samples, nets)`` and derates are ``(samples, instances)``.  A
single-design propagation is the ``samples == 1`` special case; a
Monte-Carlo chunk passes the whole ``(samples x instances)`` derate
matrix and gets per-sample WNS back from one levelized sweep — the
"one array pass instead of k re-propagations" the compute backend
exists for.

Numerical contract: each kernel reproduces the scalar engine's
*per-element arithmetic exactly* — the same interpolation expressions,
the same operand order (``in_arr + wire + delay``), the same
strict-greater winner selection (first contribution attaining the
segment max, in the scalar engine's visit order).  The only permitted
divergence is reduction tree shape in sums, which the 1e-9 relative
equivalence contract absorbs.
"""

from __future__ import annotations

import numpy as np

from repro.compute.view import (
    NetlistArrayView,
    SENSE_NEGATIVE,
    SENSE_POSITIVE,
)
from repro.obs.spans import span

NEG_INF = -np.inf


def lut_lookup(lut_arrays, ids, x1, x2):
    """Vectorized :meth:`repro.liberty.library.Lut.lookup`.

    ``ids`` are :class:`~repro.compute.view.LutStore` ids (-1 means "no
    table": the scalar engine's 0.0).  ``x1``/``x2`` broadcast against
    ``ids`` — typically ``ids`` is per-contribution and ``x1`` carries
    a leading batch axis.

    ``values`` may be 4-D ``(batch, tables, d1, d2)`` — the
    corner-stacked path of
    :meth:`~repro.compute.view.NetlistArrayView.corner_stack`.  The
    leading axis then aligns with the kernels' batch (sample) axis:
    batch row ``k`` is interpolated from table stack ``k``.  The
    search/interp axes stay 2-D because corner scaling never moves the
    index grids.
    """
    search1, interp1, search2, interp2, values = lut_arrays
    ids = np.asarray(ids)
    safe = np.where(ids < 0, 0, ids)
    x1 = np.asarray(x1, dtype=float)
    x2 = np.asarray(x2, dtype=float)

    i1 = np.sum(x1[..., None] > search1[safe][..., 1:], axis=-1)
    lo1 = interp1[safe, i1]
    span1 = interp1[safe, i1 + 1] - lo1
    f1 = np.where(span1 > 0.0,
                  (x1 - lo1) / np.where(span1 > 0.0, span1, 1.0), 0.0)

    j1 = np.sum(x2[..., None] > search2[safe][..., 1:], axis=-1)
    lo2 = interp2[safe, j1]
    span2 = interp2[safe, j1 + 1] - lo2
    f2 = np.where(span2 > 0.0,
                  (x2 - lo2) / np.where(span2 > 0.0, span2, 1.0), 0.0)

    if values.ndim == 4:
        b = np.arange(values.shape[0])[:, None]
        v00 = values[b, safe, i1, j1]
        v01 = values[b, safe, i1, j1 + 1]
        v10 = values[b, safe, i1 + 1, j1]
        v11 = values[b, safe, i1 + 1, j1 + 1]
    else:
        v00 = values[safe, i1, j1]
        v01 = values[safe, i1, j1 + 1]
        v10 = values[safe, i1 + 1, j1]
        v11 = values[safe, i1 + 1, j1 + 1]
    top = v00 + f2 * (v01 - v00)
    bottom = v10 + f2 * (v11 - v10)
    result = top + f1 * (bottom - top)
    return np.where(ids < 0, 0.0, result)


class ForwardState:
    """Arrival-side node arrays, shape (samples, nets)."""

    __slots__ = ("arr_rise", "arr_fall", "min_rise", "min_fall",
                 "slew_rise", "slew_fall", "win_rise", "win_fall")

    def __init__(self, samples: int, nets: int):
        shape = (samples, nets)
        self.arr_rise = np.full(shape, NEG_INF)
        self.arr_fall = np.full(shape, NEG_INF)
        self.min_rise = np.full(shape, np.inf)
        self.min_fall = np.full(shape, np.inf)
        self.slew_rise = np.zeros(shape)
        self.slew_fall = np.zeros(shape)
        #: Winning contribution row per net (sample 0 only; -1 = none).
        self.win_rise = None
        self.win_fall = None


def forward(view: NetlistArrayView, derates: np.ndarray,
            track_winners: bool = False,
            lut_arrays=None) -> ForwardState:
    """Levelized arrival/slew/min-arrival propagation.

    ``derates``: (batch, instances).  Startpoints are seeded exactly
    like the scalar engine (input ports, FF CK->Q arcs), then each
    topological level is one vectorized pass per edge stream.  The
    batch axis carries Monte-Carlo samples or PVT corners alike; a
    ``lut_arrays`` override (e.g. a
    :meth:`~repro.compute.view.NetlistArrayView.corner_stack`) swaps
    in per-batch table stacks.
    """
    samples = derates.shape[0]
    nets = len(view.node_names)
    state = ForwardState(samples, nets)
    if lut_arrays is None:
        lut_arrays = view.luts.arrays()
    constraints = view.constraints

    if len(view.port_nodes):
        idx = view.port_nodes
        state.arr_rise[:, idx] = view.port_delay
        state.arr_fall[:, idx] = view.port_delay
        state.min_rise[:, idx] = view.port_min
        state.min_fall[:, idx] = view.port_min
        state.slew_rise[:, idx] = constraints.input_slew
        state.slew_fall[:, idx] = constraints.input_slew

    if len(view.ff_node):
        idx = view.ff_node
        clk_slew = np.full(len(idx), constraints.input_slew)
        load = view.loads[idx]
        rise = lut_lookup(lut_arrays, view.ff_cr, clk_slew, load)
        fall = lut_lookup(lut_arrays, view.ff_cf, clk_slew, load)
        der = derates[:, view.ff_inst]
        arr_rise = view.ff_launch + rise * der
        arr_fall = view.ff_launch + fall * der
        state.arr_rise[:, idx] = arr_rise
        state.arr_fall[:, idx] = arr_fall
        state.min_rise[:, idx] = arr_rise
        state.min_fall[:, idx] = arr_fall
        state.slew_rise[:, idx] = lut_lookup(
            lut_arrays, view.ff_rt, clk_slew, load)
        state.slew_fall[:, idx] = lut_lookup(
            lut_arrays, view.ff_ft, clk_slew, load)

    if track_winners:
        state.win_rise = np.full(nets, -1, dtype=np.int64)
        state.win_fall = np.full(nets, -1, dtype=np.int64)

    rise_by = {info[0]: info for info in view.rise.levels}
    fall_by = {info[0]: info for info in view.fall.levels}
    passes = (
        (view.rise, rise_by, state.arr_rise, state.min_rise,
         state.slew_rise, "win_rise"),
        (view.fall, fall_by, state.arr_fall, state.min_fall,
         state.slew_fall, "win_fall"),
    )
    for level in sorted(set(rise_by) | set(fall_by)):
        for stream, by_level, arr_x, min_x, slw_x, win_attr in passes:
            info = by_level.get(level)
            if info is None:
                continue
            _, start, stop, seg_starts, seg_out = info
            src = stream.src[start:stop]
            edge = stream.src_edge[start:stop]
            rise_sel = edge == 0
            in_arr = np.where(rise_sel, state.arr_rise[:, src],
                              state.arr_fall[:, src])
            in_min = np.where(rise_sel, state.min_rise[:, src],
                              state.min_fall[:, src])
            in_slew = np.where(rise_sel, state.slew_rise[:, src],
                               state.slew_fall[:, src])
            load = view.loads[stream.out[start:stop]]
            delay = lut_lookup(lut_arrays, stream.dlut[start:stop],
                               in_slew, load) \
                * derates[:, stream.inst[start:stop]]
            wire = stream.wire[start:stop]
            arrival = in_arr + wire + delay
            minimum = in_min + wire + delay
            out_slew = lut_lookup(lut_arrays, stream.slut[start:stop],
                                  in_slew, load)

            count = stop - start
            sizes = np.diff(np.append(seg_starts, count))
            seg_max = np.maximum.reduceat(arrival, seg_starts, axis=-1)
            seg_min = np.minimum.reduceat(minimum, seg_starts, axis=-1)
            # First contribution attaining the max = the scalar
            # engine's strict-greater winner.
            local = np.arange(count)
            at_max = arrival == np.repeat(seg_max, sizes, axis=-1)
            first = np.minimum.reduceat(
                np.where(at_max, local, count), seg_starts, axis=-1)
            first = np.minimum(first, count - 1)
            win_slew = np.take_along_axis(out_slew, first, axis=-1)
            updated = seg_max > NEG_INF

            arr_x[:, seg_out] = seg_max
            min_x[:, seg_out] = seg_min
            slw_x[:, seg_out] = np.where(updated, win_slew, 0.0)
            winners = getattr(state, win_attr)
            if winners is not None:
                winners[seg_out] = np.where(
                    updated[0], start + first[0], -1)
    return state


def backward(view: NetlistArrayView, fwd: ForwardState,
             derates: np.ndarray, lut_arrays=None):
    """Required-time propagation; returns (req_rise, req_fall).

    Seeds endpoint required times (the scalar engine's
    ``_endpoint_pass`` min-updates), then sweeps levels descending.
    Accepts the same per-batch ``lut_arrays`` override as
    :func:`forward`.
    """
    samples = derates.shape[0]
    nets = len(view.node_names)
    req_rise = np.full((samples, nets), np.inf)
    req_fall = np.full((samples, nets), np.inf)
    period = view.constraints.clock_period
    if lut_arrays is None:
        lut_arrays = view.luts.arrays()

    for k in range(len(view.out_ep_node)):
        idx = view.out_ep_node[k]
        required = period - view.out_ep_delay[k] - view.out_ep_wire[k]
        req_rise[:, idx] = np.minimum(req_rise[:, idx], required)
        req_fall[:, idx] = np.minimum(req_fall[:, idx], required)
    for k in range(len(view.ff_ep_node)):
        idx = view.ff_ep_node[k]
        capture = period + view.ff_ep_clk[k]
        required = capture - view.ff_ep_setup[k] - view.ff_ep_wire[k]
        req_rise[:, idx] = np.minimum(req_rise[:, idx], required)
        req_fall[:, idx] = np.minimum(req_fall[:, idx], required)

    for start, stop, seg_starts, seg_src in view.bwd.levels:
        src = view.bwd.src[start:stop]
        out = view.bwd.out[start:stop]
        slew = np.maximum(fwd.slew_rise[:, src], fwd.slew_fall[:, src])
        load = view.loads[out]
        der = derates[:, view.bwd.inst[start:stop]]
        wire = view.bwd.wire[start:stop]
        rise_d = lut_lookup(lut_arrays, view.bwd.rlut[start:stop],
                            slew, load) * der + wire
        fall_d = lut_lookup(lut_arrays, view.bwd.flut[start:stop],
                            slew, load) * der + wire
        req_out_rise = req_rise[:, out]
        req_out_fall = req_fall[:, out]
        sense = view.bwd.sense[start:stop]
        worst = np.minimum(req_out_rise, req_out_fall) \
            - np.maximum(rise_d, fall_d)
        cand_rise = np.where(
            sense == SENSE_POSITIVE, req_out_rise - rise_d,
            np.where(sense == SENSE_NEGATIVE,
                     req_out_fall - fall_d, worst))
        cand_fall = np.where(
            sense == SENSE_POSITIVE, req_out_fall - fall_d,
            np.where(sense == SENSE_NEGATIVE,
                     req_out_rise - rise_d, worst))
        seg_rise = np.minimum.reduceat(cand_rise, seg_starts, axis=-1)
        seg_fall = np.minimum.reduceat(cand_fall, seg_starts, axis=-1)
        req_rise[:, seg_src] = np.minimum(req_rise[:, seg_src], seg_rise)
        req_fall[:, seg_src] = np.minimum(req_fall[:, seg_src], seg_fall)
    return req_rise, req_fall


def setup_slacks(view: NetlistArrayView, fwd: ForwardState,
                 setup=None) -> np.ndarray:
    """Per-batch setup-check slacks, in the scalar check order
    (output ports first, then flip-flop D setups).

    ``setup`` optionally overrides the view's nominal ``ff_ep_setup``
    vector — e.g. a ``(corners, ffs)`` matrix of corner-scaled setup
    constraints, broadcast against the batch axis.
    """
    samples = fwd.arr_rise.shape[0]
    period = view.constraints.clock_period
    parts = []
    if len(view.out_ep_node):
        idx = view.out_ep_node
        arrival = np.maximum(fwd.arr_rise[:, idx],
                             fwd.arr_fall[:, idx]) + view.out_ep_wire
        required = period - view.out_ep_delay - view.out_ep_wire
        part = required + view.out_ep_wire - arrival
        parts.append(np.broadcast_to(part, (samples, part.shape[-1])))
    if len(view.ff_ep_node):
        idx = view.ff_ep_node
        arrival = np.maximum(fwd.arr_rise[:, idx],
                             fwd.arr_fall[:, idx]) + view.ff_ep_wire
        capture = period + view.ff_ep_clk
        setup_v = view.ff_ep_setup if setup is None else setup
        part = capture - setup_v - arrival
        parts.append(np.broadcast_to(part, (samples, part.shape[-1])))
    if not parts:
        return np.full((samples, 0), np.inf)
    return np.concatenate(parts, axis=-1)


def hold_slacks(view: NetlistArrayView, fwd: ForwardState,
                hold=None) -> np.ndarray:
    """Per-batch hold-check slacks (flip-flop D holds, scalar order).

    Reproduces the scalar hold check digit for digit:
    ``min_arrival + wire - (clk_arrival + hold)``.  ``hold`` overrides
    the nominal per-FF hold constraints like ``setup`` above.
    """
    samples = fwd.arr_rise.shape[0]
    if not len(view.ff_ep_node):
        return np.full((samples, 0), np.inf)
    idx = view.ff_ep_node
    min_arrival = np.minimum(fwd.min_rise[:, idx],
                             fwd.min_fall[:, idx]) + view.ff_ep_wire
    hold_v = view.ff_ep_hold if hold is None else hold
    hold_required = view.ff_ep_clk + hold_v
    part = min_arrival - hold_required
    return np.broadcast_to(part, (samples, part.shape[-1]))


def setup_wns(view: NetlistArrayView, derates: np.ndarray) -> np.ndarray:
    """Per-sample worst setup slack from one batched forward pass."""
    with span("compute.setup_wns",
              batch=int(derates.shape[0])) as sp:
        view.ensure()
        sp.set(nodes=len(view.node_names))
        fwd = forward(view, derates)
        slacks = setup_slacks(view, fwd)
        if slacks.shape[-1] == 0:
            return np.full(derates.shape[0], np.inf)
        return slacks.min(axis=-1)


def batched_wns(view: NetlistArrayView, derates: np.ndarray,
                lut_arrays=None, setup=None, hold=None):
    """(setup WNS, hold WNS) per batch row from one forward pass.

    Backbone of the corner-batched signoff: ``derates`` carries one
    row per corner, ``lut_arrays`` the corner stack, and
    ``setup``/``hold`` the per-corner endpoint constraints.  The
    reductions mirror :meth:`TimingSession._summarize` (min over the
    scalar check list, +inf when a kind has no checks).
    """
    with span("compute.batched_wns", batch=int(derates.shape[0]),
              corner_luts=lut_arrays is not None) as sp:
        view.ensure()
        sp.set(nodes=len(view.node_names))
        fwd = forward(view, derates, lut_arrays=lut_arrays)
        samples = derates.shape[0]
        slacks = setup_slacks(view, fwd, setup=setup)
        wns = slacks.min(axis=-1) if slacks.shape[-1] \
            else np.full(samples, np.inf)
        holds = hold_slacks(view, fwd, hold=hold)
        hold_wns = holds.min(axis=-1) if holds.shape[-1] \
            else np.full(samples, np.inf)
        return wns, hold_wns


# --- leakage kernels --------------------------------------------------------


def category_sums(values, categories, n_categories: int) -> np.ndarray:
    """Per-category totals of index-sorted per-instance leakage values."""
    values = np.asarray(values, dtype=float)
    categories = np.asarray(categories, dtype=np.int64)
    if len(values) == 0:
        return np.zeros(n_categories)
    return np.bincount(categories, weights=values,
                       minlength=n_categories)


def local_leakage_factors(dvth: np.ndarray, swing_v: float) -> np.ndarray:
    """Vectorized :func:`repro.variation.scaling.local_leakage_factor`."""
    return np.exp(-dvth / swing_v)


def local_delay_factors(dvth: np.ndarray, vth_nominal: np.ndarray,
                        vdd: float, alpha: float,
                        floor: float) -> np.ndarray:
    """Vectorized :func:`repro.variation.scaling.local_delay_factor`."""
    od_nom = np.maximum(vdd - vth_nominal, floor)
    od = np.maximum(vdd - (vth_nominal + dvth), floor)
    return (od_nom / od) ** alpha
