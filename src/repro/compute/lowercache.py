"""Persistent on-disk cache of lowered :class:`NetlistArrayView` state.

Lowering a netlist into the compute backend's flat arrays (CSR arc
streams, stacked LUT tables, coefficient vectors) costs more than the
kernels it feeds on small-to-mid designs — ``BENCH_compute.json``
showed the numpy backend's *cold* STA up to 9x slower than scalar at
50k instances purely from lowering.  This module makes lowering pay
once per (design, library, constraints) content: the built arrays are
serialized to a versioned ``.npz`` under a cache directory and
rehydrated on the next cold start, including across processes (warm
service restarts skip lowering entirely).

Cache key — SHA-256 over:

* the netlist fingerprint (:func:`repro.netlist.fingerprint.netlist_fingerprint`),
* the library/technology content digest (:meth:`Library.content_digest`),
* every :class:`~repro.timing.constraints.Constraints` field,
* the parasitics content (per-net caps and sink delays),
* the clock-arrival map,
* :data:`FORMAT_VERSION` (a format bump changes every key, so stale
  entries simply miss and age out).

Robustness contract:

* loads are corruption-safe — any unreadable / truncated / mismatched
  file counts a miss, is deleted, and lowering proceeds fresh;
* stores are atomic (temp file + ``os.replace``) so a crashed writer
  can never publish a partial entry;
* the directory is capped at :data:`DEFAULT_MAX_ENTRIES` entries
  (override with ``REPRO_LOWER_CACHE_MAX``), evicting oldest-mtime
  first; hits refresh mtime, making eviction LRU-ish.

Enable by pointing the ``REPRO_LOWER_CACHE`` environment variable at
a directory (created on demand).  Unset / empty / ``0`` / ``off``
disables caching entirely.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import threading
from pathlib import Path

import numpy as np

from repro.compute.view import NetlistArrayView
from repro.netlist.fingerprint import netlist_fingerprint

#: Serialized-state layout version; bump when export_state() changes.
FORMAT_VERSION = 1

ENV_VAR = "REPRO_LOWER_CACHE"
ENV_MAX_ENTRIES = "REPRO_LOWER_CACHE_MAX"
DEFAULT_MAX_ENTRIES = 64

_DISABLED_VALUES = {"", "0", "off", "none", "disabled"}

_lock = threading.Lock()
_counters = {"hits": 0, "misses": 0, "stores": 0,
             "evictions": 0, "errors": 0}


def _bump(name: str, amount: int = 1):
    with _lock:
        _counters[name] += amount


def stats() -> dict[str, int]:
    """Process-wide cache counters (hits/misses/stores/evictions/errors)."""
    with _lock:
        return dict(_counters)


def reset_stats():
    with _lock:
        for name in _counters:
            _counters[name] = 0


def cache_dir() -> Path | None:
    """The configured cache directory, or None when caching is off."""
    raw = os.environ.get(ENV_VAR, "")
    if raw.strip().lower() in _DISABLED_VALUES:
        return None
    return Path(raw)


def max_entries() -> int:
    raw = os.environ.get(ENV_MAX_ENTRIES, "")
    try:
        value = int(raw)
    except ValueError:
        return DEFAULT_MAX_ENTRIES
    return max(value, 1)


def view_key(netlist, library, constraints, parasitics=None,
             clock_arrivals=None) -> str:
    """Content key of one lowering; equal key => identical arrays."""
    digest = hashlib.sha256()

    def put(text: str):
        digest.update(text.encode("utf-8"))
        digest.update(b"\n")

    put(f"format {FORMAT_VERSION}")
    put(f"netlist {netlist_fingerprint(netlist)}")
    put(f"library {library.content_digest()}")
    for field in sorted(constraints.__dataclass_fields__):
        value = getattr(constraints, field)
        if isinstance(value, dict):
            value = sorted(value.items())
        put(f"constraint {field} {value!r}")
    if parasitics:
        for name in sorted(parasitics):
            para = parasitics[name]
            put(f"net {name} {para.total_cap_pf!r}")
            for sink in sorted(para.sink_delays):
                put(f"sink {sink} {para.sink_delays[sink]!r}")
    if clock_arrivals:
        for name in sorted(clock_arrivals):
            put(f"clk {name} {clock_arrivals[name]!r}")
    return digest.hexdigest()


def _entry_path(directory: Path, key: str) -> Path:
    return directory / f"lower-{key}.npz"


def store_view(view: NetlistArrayView, key: str,
               directory: Path | None = None) -> bool:
    """Serialize a built view under ``key``; False on any I/O failure."""
    if directory is None:
        directory = cache_dir()
    if directory is None:
        return False
    tmp_path = None
    try:
        directory.mkdir(parents=True, exist_ok=True)
        state = view.export_state()
        state["format_version"] = np.int64(FORMAT_VERSION)
        state["key"] = np.array(key)
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        with os.fdopen(fd, "wb") as handle:
            np.savez_compressed(handle, **state)
        os.replace(tmp_path, _entry_path(directory, key))
        tmp_path = None
        _bump("stores")
        _evict(directory)
        return True
    except OSError:
        _bump("errors")
        if tmp_path is not None:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
        return False


def load_view(key: str, netlist, library, constraints, net_model,
              clock_arrivals=None,
              directory: Path | None = None) -> NetlistArrayView | None:
    """Rehydrate the view stored under ``key``; None on miss/corruption."""
    if directory is None:
        directory = cache_dir()
    if directory is None:
        return None
    path = _entry_path(directory, key)
    if not path.exists():
        _bump("misses")
        return None
    try:
        with np.load(path, allow_pickle=False) as data:
            if int(data["format_version"]) != FORMAT_VERSION:
                raise ValueError("format version mismatch")
            if str(data["key"]) != key:
                raise ValueError("key mismatch")
            state = {name: data[name] for name in data.files}
        view = NetlistArrayView.from_state(
            state, netlist, library, constraints, net_model,
            clock_arrivals)
    except Exception:
        # Truncated, corrupt, stale-format or plain unreadable: treat
        # as a miss and drop the entry so it cannot poison reloads.
        _bump("errors")
        _bump("misses")
        try:
            path.unlink()
        except OSError:
            pass
        return None
    try:
        os.utime(path)
    except OSError:
        pass
    _bump("hits")
    return view


def cached_view(netlist, library, constraints, net_model,
                clock_arrivals=None) -> NetlistArrayView:
    """A lowered view: from the on-disk cache when enabled, else fresh.

    On a miss the fresh lowering is built eagerly and stored back, so
    the *next* process (or session) cold-starts from disk.  With
    caching disabled this is exactly ``NetlistArrayView(...)`` —
    lazily built, zero overhead.
    """
    directory = cache_dir()
    if directory is None:
        return NetlistArrayView(netlist, library, constraints,
                                net_model, clock_arrivals)
    parasitics = getattr(net_model, "parasitics", None)
    key = view_key(netlist, library, constraints, parasitics,
                   clock_arrivals)
    view = load_view(key, netlist, library, constraints, net_model,
                     clock_arrivals, directory)
    if view is not None:
        return view
    view = NetlistArrayView(netlist, library, constraints, net_model,
                            clock_arrivals)
    view.ensure()
    store_view(view, key, directory)
    return view


def _evict(directory: Path):
    """Drop oldest-mtime entries beyond the configured cap."""
    try:
        entries = sorted(directory.glob("lower-*.npz"),
                         key=lambda p: p.stat().st_mtime)
    except OSError:
        return
    excess = len(entries) - max_entries()
    for path in entries[:max(excess, 0)]:
        try:
            path.unlink()
            _bump("evictions")
        except OSError:
            pass
