"""Vectorized array-compute backend for STA and leakage hot paths.

The repro system keeps **two numerically equivalent implementations**
of every numeric hot path:

* ``python`` — the reference scalar implementation: per-instance dict
  loops in :mod:`repro.timing.session`, :mod:`repro.power.leakage` and
  :mod:`repro.variation.montecarlo`.  Always available, easy to audit,
  the ground truth the property suite compares against.
* ``numpy`` — a compiled array view of the same computation
  (:mod:`repro.compute.view` + :mod:`repro.compute.kernels`): the
  netlist is lowered once into stable index maps, CSR-style adjacency
  and gathered Liberty coefficient tables, and full-design propagation
  becomes a handful of levelized array passes.  A Monte-Carlo chunk
  evaluates as one ``(samples x instances)`` pass instead of ``k``
  sequential re-propagations.

Backend selection is a plain string carried by
:class:`repro.config.FlowConfig` (``compute_backend``), the CLI
(``--backend``) and the analyzer constructors.  ``numpy`` degrades
gracefully: when the optional dependency is missing (install with
``pip install .[fast]``), :func:`resolve_backend` silently falls back
to the scalar path, so the same scripts run everywhere.

Equivalence contract (enforced by
``tests/compute/test_backend_equivalence.py``): for any netlist and
any tracked edit sequence, the two backends agree on every per-net
slack, WNS/TNS and total leakage to within 1e-9 relative, and produce
reports with bit-identical endpoint ordering.
"""

from __future__ import annotations

import os

from repro.errors import FlowError

#: The recognized compute backends.
BACKENDS = ("python", "numpy")

#: Environment override consulted by :func:`default_backend` — lets CI
#: run the whole test suite under either backend without code changes.
BACKEND_ENV_VAR = "REPRO_COMPUTE_BACKEND"


def numpy_available() -> bool:
    """True when the optional numpy dependency can be imported."""
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def resolve_backend(name: str | None) -> str:
    """Validate a backend name and apply the graceful scalar fallback.

    ``None`` resolves to :func:`default_backend`.  Requesting
    ``numpy`` without numpy installed is *not* an error — the scalar
    reference path is numerically equivalent, so we quietly use it.
    Unknown names raise :class:`~repro.errors.FlowError`.
    """
    if name is None:
        return default_backend()
    if name not in BACKENDS:
        raise FlowError(
            f"unknown compute backend {name!r}; known: {BACKENDS}")
    if name == "numpy" and not numpy_available():
        return "python"
    return name


def default_backend() -> str:
    """The session-wide default backend.

    Reads ``REPRO_COMPUTE_BACKEND`` (so a CI matrix job can flip every
    flow, session and analyzer at once) and falls back to ``python``.
    The value is resolved, so an unavailable numpy degrades to the
    scalar path here too.
    """
    name = os.environ.get(BACKEND_ENV_VAR, "").strip() or "python"
    if name not in BACKENDS:
        raise FlowError(
            f"{BACKEND_ENV_VAR}={name!r} is not a known backend; "
            f"known: {BACKENDS}")
    if name == "numpy" and not numpy_available():
        return "python"
    return name


__all__ = [
    "BACKENDS",
    "BACKEND_ENV_VAR",
    "default_backend",
    "numpy_available",
    "resolve_backend",
]
