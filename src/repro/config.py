"""Flow configuration.

One :class:`FlowConfig` object parameterizes every stage of the
Selective-MT flow; defaults match the DESIGN.md experiment setup.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.compute import BACKENDS, default_backend
from repro.errors import ConfigError
from repro.vgnd.bounce import SIMULTANEITY_EXPONENT, SIMULTANEITY_FLOOR


class Technique(enum.Enum):
    """The three techniques Table 1 compares."""

    DUAL_VTH = "dual_vth"
    CONVENTIONAL_SMT = "conventional_smt"
    IMPROVED_SMT = "improved_smt"


@dataclasses.dataclass
class FlowConfig:
    """Knobs for the RTL-to-layout Selective-MT flow."""

    # Timing: the clock period is the all-low-Vth critical delay times
    # (1 + timing_margin).  Small margins force many MT-cells (a
    # timing-tight design like the paper's circuit A); larger margins
    # let more cells become high-Vth (circuit B).
    timing_margin: float = 0.15
    clock_period_ns: float | None = None   # overrides margin when set

    # Placement.
    utilization: float = 0.7
    aspect_ratio: float = 1.0
    placement_seed: int = 1
    placer_iterations: int = 24

    # Timing engine: drive the STA-in-the-loop stages (assignment, ECO)
    # through an incremental TimingSession instead of rebuilding a
    # TimingAnalyzer per probe.  Results are bit-identical either way;
    # the flag exists so benchmarks can A/B the two engines.
    incremental_sta: bool = True

    # Numeric compute backend for every STA / leakage / Monte-Carlo
    # hot path: "python" (scalar reference) or "numpy" (vectorized
    # array kernels; equivalent to 1e-9 rel, falls back to scalar when
    # numpy is not installed).  Default honors REPRO_COMPUTE_BACKEND.
    compute_backend: str = dataclasses.field(default_factory=default_backend)

    # Vth assignment.
    assignment_rounds: int = 4
    # The assignment runs against a slightly tightened period so that
    # pre-route estimation error, holder loading and CTS skew cannot
    # break post-route timing closure.
    assignment_guardband: float = 0.04

    # Virtual-ground optimizer (§3 constraints).  Matches the bounce
    # assumed when the MT library was characterized.
    bounce_limit_fraction: float = 0.04    # of Vdd
    max_rail_length_um: float = 400.0
    max_cells_per_switch: int = 64

    # MTE buffering.
    mte_fanout_limit: int = 16
    mte_buffer_cell: str = "BUF_X8_HVT"

    # CTS.
    cts_fanout_limit: int = 8
    cts_buffer_cell: str = "BUF_X4_HVT"

    # ECO.
    hold_fix_buffer_cell: str = "BUF_X1_HVT"
    max_hold_fix_passes: int = 3

    # PVT corner signoff: names from repro.variation.corners (e.g.
    # "tt_nom", "ss_1.08v_125c").  Empty = the corner_signoff stage is
    # a no-op and the flow behaves exactly as single-point.
    signoff_corners: tuple[str, ...] = ()

    # Standby-transition signoff: power-mode scenario names from
    # repro.standby.scenario.standard_scenarios().  Empty = the
    # standby_signoff stage is a no-op.  Wake latencies are evaluated
    # at signoff_corners (nominal only when none are set).
    standby_scenarios: tuple[str, ...] = ()
    # Aggregate rush-current (di/dt) budget for the staged wake-up
    # scheduler, in mA; None derives the default (half the
    # simultaneous-enable rush, floored at the largest cluster peak).
    standby_rush_budget_ma: float | None = None
    # VGND settle threshold as a fraction of Vdd: wake-up counts as
    # finished once the rail is below it.
    standby_settle_fraction: float = 0.05

    # Sleep-policy signoff (repro.policy): candidate budget for the
    # batched threshold/domain sweep.  0 = the policy_signoff stage is
    # a no-op.  Workloads come from standby_scenarios, corners from
    # signoff_corners (nominal only when none are set).
    policy_candidates: int = 0
    # Largest hierarchical power-domain count a plan may use (the
    # per-cluster plan is always swept as well).
    policy_max_domains: int = 4

    # Simultaneity model of the VGND cluster current (overrides the
    # repro.vgnd.bounce defaults): the fraction of summed member peak
    # current flowing at once is max(n^-exponent, floor).
    simultaneity_exponent: float = SIMULTANEITY_EXPONENT
    simultaneity_floor: float = SIMULTANEITY_FLOOR

    def __post_init__(self):
        if self.timing_margin < 0:
            raise ConfigError(
                "timing_margin",
                f"must be non-negative, got {self.timing_margin!r}")
        if self.clock_period_ns is not None and self.clock_period_ns <= 0:
            raise ConfigError(
                "clock_period_ns",
                f"must be positive, got {self.clock_period_ns!r}")
        if not 0.0 < self.utilization <= 1.0:
            raise ConfigError(
                "utilization",
                f"must be in (0, 1], got {self.utilization!r}")
        if not 0.0 < self.bounce_limit_fraction < 0.5:
            raise ConfigError(
                "bounce_limit_fraction",
                f"must be in (0, 0.5), got {self.bounce_limit_fraction!r}")
        if self.compute_backend not in BACKENDS:
            raise ConfigError(
                "compute_backend",
                f"unknown backend {self.compute_backend!r}; "
                f"known: {BACKENDS}")
        if self.standby_rush_budget_ma is not None \
                and self.standby_rush_budget_ma <= 0:
            raise ConfigError(
                "standby_rush_budget_ma",
                f"must be positive when set, got "
                f"{self.standby_rush_budget_ma!r}")
        if not 0.0 < self.standby_settle_fraction < 0.5:
            raise ConfigError(
                "standby_settle_fraction",
                f"must be in (0, 0.5), got "
                f"{self.standby_settle_fraction!r}")
        if self.policy_candidates < 0:
            raise ConfigError(
                "policy_candidates",
                f"must be non-negative, got {self.policy_candidates!r}")
        if self.policy_max_domains < 1:
            raise ConfigError(
                "policy_max_domains",
                f"needs at least one domain, got "
                f"{self.policy_max_domains!r}")
        if not 0.0 <= self.simultaneity_exponent <= 1.0:
            raise ConfigError(
                "simultaneity_exponent",
                f"must be in [0, 1], got {self.simultaneity_exponent!r}")
        if not 0.0 < self.simultaneity_floor <= 1.0:
            raise ConfigError(
                "simultaneity_floor",
                f"must be in (0, 1], got {self.simultaneity_floor!r}")

    def bounce_limit_v(self, vdd: float) -> float:
        return self.bounce_limit_fraction * vdd
