"""The :class:`Workspace`/:class:`Design` facade — the public API.

One :class:`Workspace` owns every piece of expensive compiled state:

* the synthesized multi-Vth :class:`~repro.liberty.library.Library`
  (built at most once per workspace);
* corner-derived libraries, keyed by corner name;
* loaded netlists keyed by circuit name, each stamped with a
  **content fingerprint** (a SHA-256 over ports, instances and
  connectivity) — every per-design cache below is keyed by that
  fingerprint plus the request, never by the circuit's display name;
* per-design state: baseline :class:`~repro.timing.session.TimingSession`
  substrates, finished :class:`~repro.core.flow.FlowResult` objects and
  the typed results derived from them.

:meth:`Workspace.design` hands out :class:`Design` facades exposing
the whole capability surface — :meth:`Design.analyze`,
:meth:`Design.optimize`, :meth:`Design.signoff`,
:meth:`Design.montecarlo`, :meth:`Design.sweep` — each taking a typed
frozen request (:mod:`repro.api.requests`) and returning a typed,
schema-registered result (:mod:`repro.api.results`).  Repeated calls
with an equal request are served from cache; the warm hit path is what
the persistent job service rides (see :mod:`repro.api.service`) and
what ``benchmarks/test_bench_api.py`` pins at >= 3x over the legacy
cold path.

Numbers produced through the facade are bit-identical to the legacy
entry points' (``run_table1`` & friends), which now delegate here.
"""

from __future__ import annotations

import dataclasses
import functools
import json
import threading

from repro.api import schemas
from repro.api.requests import (
    AnalyzeRequest,
    DEFAULT_TECHNIQUES,
    MonteCarloRequest,
    OptimizeRequest,
    PolicyRequest,
    SignoffRequest,
    StandbyRequest,
    SweepRequest,
)
from repro.api.results import (
    AnalyzeResult,
    MonteCarloResult,
    OptimizeResult,
    SignoffCornerRow,
    SignoffResult,
    SweepResult,
    SweepRow,
)
from repro.policy.optimize import PolicyOptimizer, PolicyResult
from repro.standby.engine import StandbyResult
from repro.benchcircuits.suite import load_circuit
from repro.config import FlowConfig, Technique
from repro.core.compare import count_cell_kinds
from repro.core.flow import FlowResult, SelectiveMtFlow
from repro.errors import ConfigError, FlowError
from repro.liberty.library import (
    Library,
    VARIANT_HVT,
    VARIANT_LVT,
)
from repro.liberty.synth import build_default_library
from repro.netlist.core import Netlist
from repro.netlist.fingerprint import netlist_fingerprint
from repro.netlist.techmap import technology_map
from repro.obs.spans import span
from repro.power.leakage import LeakageAnalyzer
from repro.timing.constraints import Constraints
from repro.timing.session import TimingSession
from repro.timing.sta import TimingAnalyzer


def config_key(config: FlowConfig) -> str:
    """Canonical cache key for a flow configuration."""
    payload = schemas.to_dict(config)
    return json.dumps(payload, sort_keys=True)


class CacheStats:
    """Hit/miss counters for every workspace cache, by cache name.

    Self-locking: workers holding different per-design locks (and the
    service's health endpoint) touch these dicts concurrently.
    """

    def __init__(self):
        self.hits: dict[str, int] = {}
        self.misses: dict[str, int] = {}
        self._lock = threading.Lock()

    def hit(self, cache: str):
        with self._lock:
            self.hits[cache] = self.hits.get(cache, 0) + 1

    def miss(self, cache: str):
        with self._lock:
            self.misses[cache] = self.misses.get(cache, 0) + 1

    def as_dict(self) -> dict[str, dict[str, int]]:
        with self._lock:
            caches = sorted(set(self.hits) | set(self.misses))
            return {cache: {"hits": self.hits.get(cache, 0),
                            "misses": self.misses.get(cache, 0)}
                    for cache in caches}

    def tree(self) -> dict[str, dict[str, float]]:
        """The unified-stats shape: per cache, hits/misses/hit_rate.

        This is the form :meth:`Workspace.stats_tree` (and through it
        ``/v1/metrics``) reports; :meth:`as_dict` stays as the
        compatibility shape ``/v1/health`` has always served.
        """
        tree: dict[str, dict[str, float]] = {}
        for cache, counts in self.as_dict().items():
            total = counts["hits"] + counts["misses"]
            tree[cache] = {
                "hits": counts["hits"],
                "misses": counts["misses"],
                "hit_rate": counts["hits"] / total if total else 0.0,
            }
        return tree


@dataclasses.dataclass
class _Baseline:
    """Compiled analyze substrate for one (design, variant)."""

    netlist: Netlist
    constraints: Constraints
    session: TimingSession
    leakage_nw: float
    leakage_by_category: dict[str, float]


class Workspace:
    """Caches compiled libraries, netlists and per-design state.

    ``jobs`` is the default process-pool width handed to the grid
    studies (sweep / Monte-Carlo chunking); results are identical for
    any value, so it is purely a throughput knob.
    """

    def __init__(self, library: Library | None = None,
                 config: FlowConfig | None = None, jobs: int = 1):
        self._library = library
        self.config = config or FlowConfig()
        self.jobs = max(1, int(jobs))
        self.stats = CacheStats()
        #: Guards the workspace-level caches; designs carry their own
        #: lock, so jobs on *different* designs run concurrently while
        #: same-design state (one mutable TimingSession, one flow
        #: cache) is serialized.
        self._lock = threading.RLock()
        self._corner_libraries: dict[str, Library] = {}
        self._netlists: dict[str, Netlist] = {}
        self._fingerprints: dict[str, str] = {}
        self._designs: dict[tuple[str, str], Design] = {}
        #: Names registered via :meth:`adopt` whose content workers
        #: cannot reproduce with ``load_circuit(name)`` — grid jobs
        #: must ship the object for these.
        self._adopted: set[str] = set()
        #: Fingerprints of netlists as loaded from the registry, per
        #: name (lets :meth:`adopt` recognize registry-identical
        #: content and keep the cheap by-name worker loading).
        self._registry_fingerprints: dict[str, str] = {}

    # --- compiled-library state --------------------------------------------

    @property
    def library(self) -> Library:
        with self._lock:
            if self._library is None:
                self.stats.miss("library")
                self._library = build_default_library()
            else:
                self.stats.hit("library")
            return self._library

    def peek_library(self) -> Library | None:
        """The caller-supplied (or already built) library, without
        triggering a build.  The sharded service tier uses this to
        ship a custom library to its worker processes while letting
        default-library shards build their own deterministically."""
        with self._lock:
            return self._library

    def corner_library(self, corner_name: str) -> Library:
        """Corner-derived library, derived at most once per corner."""
        with self._lock:
            if corner_name in self._corner_libraries:
                self.stats.hit("corner_library")
                return self._corner_libraries[corner_name]
            self.stats.miss("corner_library")
            from repro.variation.corners import \
                derive_corner_library_cached, resolve_corner

            library = self.library
            corner = resolve_corner(corner_name, library.tech)
            derived = derive_corner_library_cached(library, corner)
            self._corner_libraries[corner_name] = derived
            return derived

    # --- netlists -----------------------------------------------------------

    def netlist(self, circuit: str) -> Netlist:
        """Load (once) and cache a circuit by registry name.

        Callers must treat the returned netlist as immutable; every
        flow/analyze path clones before mutating.
        """
        with self._lock:
            if circuit in self._netlists:
                self.stats.hit("netlist")
                return self._netlists[circuit]
            self.stats.miss("netlist")
            netlist = load_circuit(circuit)
            self._netlists[circuit] = netlist
            fingerprint = netlist_fingerprint(netlist)
            self._fingerprints[circuit] = fingerprint
            self._registry_fingerprints[circuit] = fingerprint
            return netlist

    def fingerprint(self, circuit: str) -> str:
        with self._lock:
            self.netlist(circuit)
            return self._fingerprints[circuit]

    def adopt(self, netlist: Netlist, name: str | None = None,
              config: FlowConfig | None = None) -> "Design":
        """A :class:`Design` over a caller-supplied (ad-hoc) netlist.

        Registers the netlist under ``name`` (default: its own name);
        per-design state is still keyed by content fingerprint, so an
        adopted netlist and a registry circuit with identical content
        share caches.
        """
        with self._lock:
            name = name or netlist.name
            fingerprint = netlist_fingerprint(netlist)
            self._netlists[name] = netlist
            self._fingerprints[name] = fingerprint
            # Only content that workers cannot reproduce by loading
            # the registry name needs shipping; a registry-identical
            # adoption keeps the cheap by-name grid path.
            if fingerprint != self._registry_fingerprints.get(name):
                self._adopted.add(name)
            else:
                self._adopted.discard(name)
            return self.design(name, config)

    # --- designs ------------------------------------------------------------

    def design(self, circuit: str,
               config: FlowConfig | None = None) -> "Design":
        """The :class:`Design` facade for one circuit + configuration.

        Designs are cached by (netlist fingerprint, config), so two
        handles to the same content share all compiled state.
        """
        with self._lock:
            config = config or self.config
            key = (self.fingerprint(circuit), config_key(config))
            if key in self._designs:
                self.stats.hit("design")
                return self._designs[key]
            self.stats.miss("design")
            design = Design(self, circuit, config)
            self._designs[key] = design
            return design

    # --- workspace-level studies -------------------------------------------

    def sweep(self, circuits, techniques=None,
              config: FlowConfig | None = None,
              jobs: int | None = None) -> SweepResult:
        """Technique comparison across circuits (the Table 1 grid).

        With ``jobs > 1`` the whole ``circuits x techniques`` grid is
        fanned through **one** process pool (like the legacy
        ``run_sweep``), so worker utilization scales with the full
        grid, not per-circuit; serial runs route through each design's
        flow cache.  Rows are bit-identical either way.
        """
        circuits = list(circuits)
        techniques = tuple(techniques or DEFAULT_TECHNIQUES)
        jobs = self.jobs if jobs is None else max(1, int(jobs))
        if jobs > 1:
            from repro.runner import (
                ExperimentRunner,
                FlowJob,
                comparison_from_outcomes,
            )

            grid_config = config or self.config
            flow_jobs = [
                FlowJob(circuit=circuit, technique=technique,
                        config=grid_config,
                        netlist=(self.netlist(circuit)
                                 if circuit in self._adopted else None))
                for circuit in circuits for technique in techniques]
            outcomes = ExperimentRunner(
                jobs=jobs, library=self.library).run(flow_jobs)
            rows: list[SweepRow] = []
            per_circuit = len(techniques)
            for index, circuit in enumerate(circuits):
                chunk = outcomes[index * per_circuit:
                                 (index + 1) * per_circuit]
                comparison = comparison_from_outcomes(circuit, chunk)
                rows.extend(_to_sweep_rows(circuit, comparison.rows))
            return SweepResult(rows=tuple(rows))
        request = SweepRequest(techniques=techniques)
        rows = []
        for circuit in circuits:
            design = self.design(circuit, config)
            rows.extend(design.sweep(request, jobs=1).rows)
        return SweepResult(rows=tuple(rows))

    def standby(self, circuit: str,
                request: "StandbyRequest | None" = None,
                config: FlowConfig | None = None,
                **kwargs) -> "StandbyResult":
        """Standby-transition study of one circuit (facade shortcut).

        Equivalent to ``workspace.design(circuit).standby(...)`` — the
        cached flow result, corner libraries and compiled library are
        all reused.
        """
        return self.design(circuit, config).standby(request, **kwargs)

    def policy(self, circuit: str,
               request: "PolicyRequest | None" = None,
               config: FlowConfig | None = None,
               **kwargs) -> "PolicyResult":
        """Sleep-policy sweep of one circuit (facade shortcut).

        Equivalent to ``workspace.design(circuit).policy(...)`` — the
        cached flow result, corner libraries and compiled library are
        all reused.
        """
        return self.design(circuit, config).policy(request, **kwargs)

    def cache_stats(self) -> dict[str, dict[str, int]]:
        """Compatibility view: the flat dict ``/v1/health`` has always
        served (workspace caches by name, plus the process-wide
        ``lowering`` and ``corner_memo`` counter dicts in their native
        shapes).  New consumers should prefer :meth:`stats_tree`."""
        stats = self.stats.as_dict()
        tree = self.stats_tree()
        # The persistent lowering cache and the corner-library memo
        # keep process-wide counters (they outlive any one workspace);
        # fold them in so the service health endpoint reports them.
        if tree["lowering"]:
            stats["lowering"] = tree["lowering"]
        stats["corner_memo"] = tree["corner_memo"]
        return stats

    def stats_tree(self) -> dict[str, dict]:
        """One coherent stats tree across every cache layer.

        ``workspace`` holds this workspace's hit/miss/hit_rate per
        cache (:meth:`CacheStats.tree`); ``corner_memo`` and
        ``lowering`` are the process-wide counter dicts (``lowering``
        is empty on scalar-only installs).  This is the shape
        ``/v1/metrics`` reports under ``caches``.
        """
        try:
            from repro.compute.lowercache import stats as lower_stats

            lowering = lower_stats()
        except ImportError:  # pragma: no cover - python-only installs
            lowering = {}
        from repro.variation.corners import corner_memo_stats

        return {
            "workspace": self.stats.tree(),
            "corner_memo": corner_memo_stats(),
            "lowering": lowering,
        }


def _locked(method):
    """Serialize a :class:`Design` method on the per-design lock."""
    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        with self._lock:
            return method(self, *args, **kwargs)
    return wrapper


def _to_sweep_rows(circuit: str, comparison_rows) -> list[SweepRow]:
    """ComparisonRow values -> typed SweepRow values, relabeled."""
    return [SweepRow(circuit=circuit,
                     technique=row.technique,
                     area_um2=row.area_um2,
                     leakage_nw=row.leakage_nw,
                     area_pct=row.area_pct,
                     leakage_pct=row.leakage_pct,
                     mt_cells=row.mt_cells,
                     switches=row.switches,
                     holders=row.holders)
            for row in comparison_rows]


class Design:
    """Facade over one (netlist, configuration) pair.

    Obtained from :meth:`Workspace.design`; every method is cached on
    its typed request, so repeated calls are warm.  Methods are
    serialized by a per-design lock (the baseline timing session and
    the flow cache are shared mutable state); jobs against different
    designs run concurrently.
    """

    def __init__(self, workspace: Workspace, circuit: str,
                 config: FlowConfig):
        self.workspace = workspace
        self.circuit = circuit
        self.config = config
        self._lock = threading.RLock()
        self._baselines: dict[AnalyzeRequest, _Baseline] = {}
        self._analyses: dict[AnalyzeRequest, AnalyzeResult] = {}
        self._flows: dict[Technique, FlowResult] = {}
        self._optimizations: dict[Technique, OptimizeResult] = {}
        self._signoffs: dict[SignoffRequest, SignoffResult] = {}
        self._montecarlos: dict[MonteCarloRequest, MonteCarloResult] = {}
        self._sweeps: dict[tuple[SweepRequest, int], SweepResult] = {}
        self._standbys: dict[StandbyRequest, StandbyResult] = {}
        self._policies: dict[PolicyRequest, PolicyResult] = {}

    @classmethod
    def load(cls, circuit: str, config: FlowConfig | None = None,
             workspace: Workspace | None = None) -> "Design":
        """Standalone loader: ``Design.load("c432")``.

        Creates (or reuses) a workspace under the hood; prefer an
        explicit long-lived :class:`Workspace` when handling more than
        one design.
        """
        workspace = workspace or Workspace()
        return workspace.design(circuit, config)

    @property
    def library(self) -> Library:
        return self.workspace.library

    @property
    def netlist(self) -> Netlist:
        return self.workspace.netlist(self.circuit)

    @property
    def fingerprint(self) -> str:
        return self.workspace.fingerprint(self.circuit)

    def _stats(self) -> CacheStats:
        return self.workspace.stats

    # --- analyze ------------------------------------------------------------

    @_locked
    def _baseline(self, request: AnalyzeRequest) -> _Baseline:
        if request in self._baselines:
            self._stats().hit("baseline")
            return self._baselines[request]
        self._stats().miss("baseline")
        library = self.library
        netlist = self.netlist.clone()
        variant = VARIANT_LVT if request.variant == "lvt" else VARIANT_HVT
        technology_map(netlist, library, variant)
        if self.config.clock_period_ns is not None:
            constraints = Constraints(
                clock_period=self.config.clock_period_ns)
        else:
            # Mirrors the derive_constraints stage: clock period is the
            # critical delay times (1 + margin) — here on the unplaced
            # mapped netlist (no parasitics), since analyze() probes
            # the design before any physical flow exists.
            probe = Constraints(clock_period=1000.0)
            report = TimingAnalyzer(
                netlist, library, probe,
                compute_backend=self.config.compute_backend).run()
            min_period = 1000.0 - report.wns
            if min_period <= 0:
                raise FlowError(
                    "could not derive a positive minimum period")
            constraints = Constraints(
                clock_period=min_period
                * (1.0 + self.config.timing_margin))
        session = TimingSession(
            netlist, library, constraints,
            compute_backend=self.config.compute_backend)
        breakdown = LeakageAnalyzer(
            netlist, library,
            compute_backend=self.config.compute_backend).standby_leakage()
        baseline = _Baseline(
            netlist=netlist, constraints=constraints, session=session,
            leakage_nw=breakdown.total_nw,
            leakage_by_category=breakdown.category_values())
        self._baselines[request] = baseline
        return baseline

    @staticmethod
    def _request_or_kwargs(request, kwargs: dict):
        """A method takes EITHER a request object OR field kwargs."""
        supplied = {key: value for key, value in kwargs.items()
                    if value is not None}
        if request is not None and supplied:
            raise ConfigError(
                "request",
                f"pass either a request object or field keyword "
                f"arguments, not both (got request plus "
                f"{sorted(supplied)})")
        return supplied

    @_locked
    def analyze(self, request: AnalyzeRequest | None = None, *,
                variant: str | None = None) -> AnalyzeResult:
        """Baseline STA + leakage of the design as loaded (no flow)."""
        supplied = self._request_or_kwargs(request, {"variant": variant})
        request = request or AnalyzeRequest(**supplied)
        if request in self._analyses:
            self._stats().hit("analyze")
            return self._analyses[request]
        self._stats().miss("analyze")
        baseline = self._baseline(request)
        report = baseline.session.report()
        result = AnalyzeResult(
            circuit=self.circuit,
            fingerprint=self.fingerprint,
            variant=request.variant,
            instances=len(baseline.netlist.instances),
            clock_period_ns=baseline.constraints.clock_period,
            wns=report.wns,
            hold_wns=report.hold_wns,
            leakage_nw=baseline.leakage_nw,
            leakage_by_category=dict(baseline.leakage_by_category),
            compute_backend=baseline.session.compute_backend)
        self._analyses[request] = result
        return result

    # --- optimize -----------------------------------------------------------

    @_locked
    def flow_result(self,
                    technique: Technique = Technique.IMPROVED_SMT
                    ) -> FlowResult:
        """The cached full :class:`FlowResult` for one technique.

        This is the in-process escape hatch for consumers that need
        the heavyweight artifacts (stage reports, VGND network, design
        export); the typed surface is :meth:`optimize`.
        """
        technique = Technique(technique)
        if technique in self._flows:
            self._stats().hit("flow")
            return self._flows[technique]
        self._stats().miss("flow")
        with span("api.flow", circuit=self.circuit,
                  technique=technique.value):
            flow = SelectiveMtFlow(self.netlist, self.library, technique,
                                   self.config)
            result = flow.run()
        self._flows[technique] = result
        return result

    @_locked
    def optimize(self, request: OptimizeRequest | None = None, *,
                 technique: Technique | str | None = None
                 ) -> OptimizeResult:
        """Run one technique end to end (cached per technique)."""
        self._request_or_kwargs(request, {"technique": technique})
        request = request or OptimizeRequest(
            technique=Technique(technique) if technique is not None
            else Technique.IMPROVED_SMT)
        if request.technique in self._optimizations:
            self._stats().hit("optimize")
            return self._optimizations[request.technique]
        self._stats().miss("optimize")
        result = self.flow_result(request.technique)
        mt, switches, holders = count_cell_kinds(result.netlist,
                                                 self.library)
        optimized = OptimizeResult(
            circuit=self.circuit,
            fingerprint=self.fingerprint,
            technique=request.technique,
            area_um2=result.total_area,
            leakage_nw=result.leakage_nw,
            wns=result.timing.wns,
            hold_wns=result.timing.hold_wns,
            mt_cells=mt, switches=switches, holders=holders,
            stages=tuple(stage.name for stage in result.stages))
        self._optimizations[request.technique] = optimized
        return optimized

    # --- signoff ------------------------------------------------------------

    @_locked
    def signoff(self, request: SignoffRequest | None = None, *,
                technique: Technique | str | None = None,
                corners=None) -> SignoffResult:
        """Multi-corner signoff of one technique's finished design.

        The flow result is reused from the optimize cache; each corner
        is then one leakage pass plus one STA against the (cached)
        corner-derived library — identical numbers to the flow's
        ``corner_signoff`` stage.
        """
        self._request_or_kwargs(request,
                                {"technique": technique,
                                 "corners": corners})
        request = request or SignoffRequest(
            technique=Technique(technique) if technique is not None
            else Technique.IMPROVED_SMT,
            corners=tuple(corners) if corners is not None else ())
        if request in self._signoffs:
            self._stats().hit("signoff")
            return self._signoffs[request]
        self._stats().miss("signoff")
        from repro.variation.corners import default_signoff_corners
        from repro.variation.signoff import evaluate_corners_batched

        library = self.library
        corner_names = request.corners or \
            default_signoff_corners(library.tech)
        flow = self.flow_result(request.technique)
        clock_arrivals = flow.cts.clock_arrivals if flow.cts else None
        corner_libraries = {name: self.workspace.corner_library(name)
                            for name in corner_names}
        results = evaluate_corners_batched(
            flow.netlist, library, corner_names, flow.constraints,
            parasitics=flow.parasitics, network=flow.network,
            clock_arrivals=clock_arrivals,
            compute_backend=self.config.compute_backend,
            corner_libraries=corner_libraries)
        rows = tuple(
            SignoffCornerRow(corner=name, leakage_nw=res.leakage_nw,
                             wns=res.wns, hold_wns=res.hold_wns)
            for name, res in results.items())
        result = SignoffResult(
            circuit=self.circuit,
            technique=request.technique,
            corners=tuple(corner_names),
            area_um2=flow.total_area,
            nominal_leakage_nw=flow.leakage_nw,
            nominal_wns=flow.timing.wns,
            rows=rows)
        self._signoffs[request] = result
        return result

    # --- standby ------------------------------------------------------------

    def _scenario_objects(self, request):
        """Resolve a request's named + payload scenarios (in order).

        Built-in names default in only when the request carries
        neither names nor payloads — a payload-only request means
        exactly those workloads.
        """
        from repro.standby.scenario import (
            resolve_scenario,
            standard_scenarios,
        )

        names = request.scenarios
        if not names and not request.scenario_payloads:
            names = tuple(standard_scenarios())
        return [resolve_scenario(name) for name in names] \
            + list(request.scenario_payloads)

    @_locked
    def standby(self, request: StandbyRequest | None = None, *,
                technique: Technique | str | None = None,
                scenarios=None, scenario_payloads=None, corners=None,
                rush_budget_ma: float | None = None,
                settle_fraction: float | None = None) -> StandbyResult:
        """Standby-transition study of one technique's finished design.

        The flow result comes from the optimize cache; corner-derived
        libraries come from the workspace corner-library cache; the
        post-route parasitics the flow extracted refine the VGND rail
        capacitances.  Only the improved technique builds the
        shared-switch network this analysis characterizes — the others
        raise :class:`~repro.errors.FlowError`.

        Field defaults come from the design's :class:`FlowConfig`
        (``standby_scenarios``, ``standby_rush_budget_ma``,
        ``standby_settle_fraction``, ``signoff_corners``) with the
        same fallbacks as the flow's ``standby_signoff`` stage (all
        built-in scenarios, the default signoff corner set), so for
        any configuration with ``standby_scenarios`` set the facade
        answer equals — and is simply reused from — the stage's
        ``FlowResult.standby``.  An explicit request object is taken
        verbatim.
        """
        self._request_or_kwargs(request, {
            "technique": technique, "scenarios": scenarios,
            "scenario_payloads": scenario_payloads,
            "corners": corners, "rush_budget_ma": rush_budget_ma,
            "settle_fraction": settle_fraction})
        request = request or StandbyRequest(
            technique=Technique(technique) if technique is not None
            else Technique.IMPROVED_SMT,
            scenarios=tuple(scenarios) if scenarios is not None
            else self.config.standby_scenarios,
            scenario_payloads=tuple(scenario_payloads)
            if scenario_payloads is not None else (),
            corners=tuple(corners) if corners is not None
            else self.config.signoff_corners,
            rush_budget_ma=rush_budget_ma
            if rush_budget_ma is not None
            else self.config.standby_rush_budget_ma,
            settle_fraction=settle_fraction
            if settle_fraction is not None
            else self.config.standby_settle_fraction)
        if request in self._standbys:
            self._stats().hit("standby")
            return self._standbys[request]
        self._stats().miss("standby")
        from repro.standby.engine import StandbyEngine
        from repro.variation.corners import default_signoff_corners

        library = self.library
        flow = self.flow_result(request.technique)
        if flow.network is None or not flow.network.clusters:
            raise FlowError(
                f"technique {request.technique.value!r} builds no "
                f"shared-switch VGND network; standby-transition "
                f"analysis needs improved_smt")
        scenario_objs = self._scenario_objects(request)
        scenario_names = tuple(s.name for s in scenario_objs)
        corner_names = request.corners \
            or default_signoff_corners(library.tech)
        # The standby_signoff stage may have computed exactly this
        # analysis during the flow run — reuse it instead of running
        # the engine a second time.
        stage_result = flow.standby
        if stage_result is not None \
                and stage_result.circuit == self.circuit \
                and stage_result.scenarios == tuple(scenario_names) \
                and stage_result.corners == tuple(corner_names) \
                and stage_result.settle_fraction \
                == request.settle_fraction \
                and request.rush_budget_ma \
                == self.config.standby_rush_budget_ma:
            self._standbys[request] = stage_result
            return stage_result
        corner_libraries = {name: self.workspace.corner_library(name)
                            for name in corner_names}
        engine = StandbyEngine(
            flow.netlist, library, flow.network, scenario_objs,
            corners=tuple(corner_names),
            settle_fraction=request.settle_fraction,
            rush_budget_ma=request.rush_budget_ma,
            parasitics=flow.parasitics,
            compute_backend=self.config.compute_backend,
            corner_libraries=corner_libraries,
            circuit=self.circuit, technique=request.technique)
        result = engine.run()
        self._standbys[request] = result
        return result

    # --- sleep policy -------------------------------------------------------

    @_locked
    def policy(self, request: PolicyRequest | None = None, *,
               technique: Technique | str | None = None,
               scenarios=None, scenario_payloads=None, corners=None,
               candidates: int | None = None,
               max_domains: int | None = None,
               rush_budget_ma: float | None = None,
               settle_fraction: float | None = None) -> PolicyResult:
        """Sleep-policy sweep of one technique's finished design.

        Sweeps at least ``candidates`` (domain plan, threshold)
        policies through the batched scenario kernel and returns the
        Pareto front of (net savings, worst wake latency, peak rush).
        Scenario, corner and cache semantics match :meth:`standby`:
        flow result from the optimize cache, corner libraries from the
        workspace cache, defaults from the design's
        :class:`FlowConfig` (``policy_candidates`` falls back to 1024
        when the config leaves the stage off), and when the flow's
        ``policy_signoff`` stage already ran exactly this sweep its
        result is reused.
        """
        self._request_or_kwargs(request, {
            "technique": technique, "scenarios": scenarios,
            "scenario_payloads": scenario_payloads,
            "corners": corners, "candidates": candidates,
            "max_domains": max_domains,
            "rush_budget_ma": rush_budget_ma,
            "settle_fraction": settle_fraction})
        request = request or PolicyRequest(
            technique=Technique(technique) if technique is not None
            else Technique.IMPROVED_SMT,
            scenarios=tuple(scenarios) if scenarios is not None
            else self.config.standby_scenarios,
            scenario_payloads=tuple(scenario_payloads)
            if scenario_payloads is not None else (),
            corners=tuple(corners) if corners is not None
            else self.config.signoff_corners,
            candidates=candidates if candidates is not None
            else (self.config.policy_candidates or 1024),
            max_domains=max_domains if max_domains is not None
            else self.config.policy_max_domains,
            rush_budget_ma=rush_budget_ma
            if rush_budget_ma is not None
            else self.config.standby_rush_budget_ma,
            settle_fraction=settle_fraction
            if settle_fraction is not None
            else self.config.standby_settle_fraction)
        if request in self._policies:
            self._stats().hit("policy")
            return self._policies[request]
        self._stats().miss("policy")
        from repro.variation.corners import default_signoff_corners

        library = self.library
        flow = self.flow_result(request.technique)
        if flow.network is None or not flow.network.clusters:
            raise FlowError(
                f"technique {request.technique.value!r} builds no "
                f"shared-switch VGND network; sleep-policy "
                f"optimization needs improved_smt")
        scenario_objs = self._scenario_objects(request)
        scenario_names = tuple(s.name for s in scenario_objs)
        corner_names = request.corners \
            or default_signoff_corners(library.tech)
        # The policy_signoff stage may have swept exactly this space
        # during the flow run — reuse it instead of sweeping again.
        stage_result = flow.policy
        if stage_result is not None \
                and stage_result.circuit == self.circuit \
                and stage_result.scenarios == scenario_names \
                and stage_result.corners == tuple(corner_names) \
                and stage_result.settle_fraction \
                == request.settle_fraction \
                and request.candidates \
                == self.config.policy_candidates \
                and request.max_domains \
                == self.config.policy_max_domains \
                and request.rush_budget_ma \
                == self.config.standby_rush_budget_ma:
            self._policies[request] = stage_result
            return stage_result
        corner_libraries = {name: self.workspace.corner_library(name)
                            for name in corner_names}
        optimizer = PolicyOptimizer(
            flow.netlist, library, flow.network, scenario_objs,
            corners=tuple(corner_names),
            candidates=request.candidates,
            max_domains=request.max_domains,
            settle_fraction=request.settle_fraction,
            rush_budget_ma=request.rush_budget_ma,
            parasitics=flow.parasitics,
            compute_backend=self.config.compute_backend,
            corner_libraries=corner_libraries,
            circuit=self.circuit, technique=request.technique)
        result = optimizer.run()
        self._policies[request] = result
        return result

    # --- Monte-Carlo --------------------------------------------------------

    @_locked
    def montecarlo(self, request: MonteCarloRequest | None = None,
                   jobs: int | None = None,
                   **kwargs) -> MonteCarloResult:
        """Monte-Carlo Vth-variation study of one technique's design.

        ``jobs > 1`` chunks the sample grid over the process-pool
        runner; sample ``k`` is a pure function of ``(seed, k)``, so
        the statistics are identical for any fan-out.  The serial path
        reuses the cached flow result and evaluates in-process.
        """
        self._request_or_kwargs(request, kwargs)
        request = request or MonteCarloRequest(**kwargs)
        jobs = self.workspace.jobs if jobs is None else max(1, int(jobs))
        if request in self._montecarlos:
            self._stats().hit("montecarlo")
            return self._montecarlos[request]
        self._stats().miss("montecarlo")
        from repro.variation.jobs import build_engine
        from repro.variation.montecarlo import McConfig, summarize

        mc = McConfig(samples=request.samples, seed=request.seed,
                      sigma_global_v=request.sigma_global_v,
                      sigma_local_v=request.sigma_local_v,
                      timing=request.timing,
                      leakage_budget_nw=request.leakage_budget_nw)
        if jobs == 1:
            flow = self.flow_result(request.technique)
            area_um2 = flow.total_area
            engine = build_engine(
                flow, self.library, mc, request.corner,
                compute_backend=self.config.compute_backend)
            samples = engine.run(start=0, count=request.samples)
            nominal_leakage = engine.nominal_leakage_nw
            nominal_wns = engine.nominal_wns
        else:
            from repro.runner import ExperimentRunner
            from repro.variation.jobs import McJob, run_mc_job

            chunks = min(jobs, request.samples)
            bounds = [(i * request.samples // chunks,
                       (i + 1) * request.samples // chunks)
                      for i in range(chunks)]
            shipped = self.netlist \
                if self.circuit in self.workspace._adopted else None
            grid = [McJob(circuit=self.circuit,
                          technique=request.technique,
                          config=self.config, mc=mc, corner=request.corner,
                          start=start, count=stop - start,
                          netlist=shipped)
                    for (start, stop) in bounds]
            outcomes = ExperimentRunner(
                jobs=jobs, library=self.library).map(run_mc_job, grid)
            failed = [o for o in outcomes if not o.ok]
            if failed:
                raise FlowError(
                    f"{len(failed)} Monte-Carlo job(s) failed "
                    f"({failed[0].circuit}/"
                    f"{failed[0].technique.value}):\n{failed[0].error}")
            # The chunk outcomes already carry the flow-level numbers;
            # re-running the flow here just to read them would cost one
            # full serial flow before any worker output is used.
            samples = [s for outcome in outcomes for s in outcome.samples]
            nominal_leakage = outcomes[0].nominal_leakage_nw
            nominal_wns = outcomes[0].nominal_wns
            area_um2 = outcomes[0].area_um2
        budget = mc.leakage_budget_nw
        if budget is None:
            budget = mc.budget_factor * nominal_leakage
        result = MonteCarloResult(
            circuit=self.circuit,
            technique=request.technique,
            corner=request.corner,
            samples=request.samples,
            seed=request.seed,
            area_um2=area_um2,
            nominal_leakage_nw=nominal_leakage,
            nominal_wns=nominal_wns,
            statistics=summarize(samples, leakage_budget_nw=budget),
            sample_values=tuple(samples))
        self._montecarlos[request] = result
        return result

    # --- sweep --------------------------------------------------------------

    @_locked
    def sweep(self, request: SweepRequest | None = None, *,
              techniques=None, jobs: int | None = None) -> SweepResult:
        """Compare techniques on this design (one Table 1 row group)."""
        self._request_or_kwargs(request, {"techniques": techniques})
        if request is None:
            request = SweepRequest(
                techniques=tuple(techniques or DEFAULT_TECHNIQUES))
        jobs = self.workspace.jobs if jobs is None else max(1, int(jobs))
        key = (request, jobs if jobs > 1 else 1)
        if key in self._sweeps:
            self._stats().hit("sweep")
            return self._sweeps[key]
        self._stats().miss("sweep")
        rows = tuple(self._sweep_rows(request.techniques, jobs))
        result = SweepResult(rows=rows)
        self._sweeps[key] = result
        return result

    def _sweep_rows(self, techniques: tuple[Technique, ...],
                    jobs: int) -> list[SweepRow]:
        if jobs > 1:
            from repro.runner import (
                ExperimentRunner,
                FlowJob,
                comparison_from_outcomes,
            )

            # Registry circuits load by name inside each worker (cheap,
            # avoids pickling a deep netlist graph); only adopted
            # ad-hoc netlists must ship the object itself.
            shipped = self.netlist \
                if self.circuit in self.workspace._adopted else None
            flow_jobs = [FlowJob(circuit=self.circuit, technique=technique,
                                 config=self.config, netlist=shipped)
                         for technique in techniques]
            outcomes = ExperimentRunner(
                jobs=jobs, library=self.library).run(flow_jobs)
            comparison = comparison_from_outcomes(self.circuit, outcomes)
            rows = comparison.rows
        else:
            # Serial: every technique's flow lands in (or comes from)
            # the optimize cache; the normalization mirrors
            # compare_techniques() exactly.
            results = {technique: self.flow_result(technique)
                       for technique in techniques}
            baseline = results.get(Technique.DUAL_VTH)
            if baseline is None and techniques:
                baseline = results[techniques[0]]
            base_area = baseline.total_area if baseline else 1.0
            base_leak = baseline.leakage_nw if baseline else 1.0
            rows = []
            from repro.core.compare import ComparisonRow

            for technique in techniques:
                result = results[technique]
                mt, switches, holders = count_cell_kinds(
                    result.netlist, self.library)
                rows.append(ComparisonRow(
                    circuit=self.circuit,
                    technique=technique,
                    area_um2=result.total_area,
                    leakage_nw=result.leakage_nw,
                    area_pct=100.0 * result.total_area / base_area,
                    leakage_pct=100.0 * result.leakage_nw / base_leak,
                    mt_cells=mt, switches=switches, holders=holders))
        return _to_sweep_rows(self.circuit, rows)
