"""Sharded process-pool execution tier for the job service.

One warm in-process workspace caps the service's throughput at one
GIL.  This module runs jobs in worker *processes* instead — but not an
anonymous pool: workers are **sharded by the design's SHA-256 content
fingerprint** (:func:`repro.netlist.fingerprint.netlist_fingerprint`).
Every job for a given design lands on the same shard process, so each
shard keeps its own warm :class:`~repro.api.Workspace` (compiled
library, flow results, timing sessions, lowering caches) and
same-design jobs stay cache-local, while jobs for *different* designs
run truly in parallel on different processes.

Each shard is a single-worker :class:`ProcessPoolExecutor` (spawned
lazily); jobs cross the process boundary as schema payload dicts —
the same durable-serializable envelopes the HTTP layer speaks — and
come back as round-trip-checked result payloads, so a shard worker
and the in-process tier produce byte-identical response bodies.

Crash containment: a shard worker that dies mid-job (OOM-killed,
segfault) breaks only its own executor.  :meth:`ShardPool.run` turns
the break into a :class:`ShardError` naming the shard — the job lands
``failed`` with a useful error instead of hanging ``running`` — and
rebuilds the shard's executor so the next job for those designs gets
a fresh warm worker.
"""

from __future__ import annotations

import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from repro.errors import ReproError


class ShardError(ReproError):
    """A shard worker process died while running a job."""


def shard_index(fingerprint: str, shards: int) -> int:
    """Stable shard routing: leading fingerprint bits mod shard count."""
    return int(fingerprint[:16], 16) % max(1, int(shards))


#: Per-shard-process warm workspace (set by the pool initializer).
_WORKSPACE = None


def _shard_init(library, jobs: int):
    """Executor initializer: one warm workspace per shard process."""
    global _WORKSPACE
    from repro.api.workspace import Workspace

    _WORKSPACE = Workspace(library=library, jobs=jobs)


def execute_kind(design, kind: str, request):
    """Dispatch one job kind onto a :class:`~repro.api.Design` facade."""
    from repro.errors import ServiceError

    method = {
        "analyze": design.analyze,
        "optimize": design.optimize,
        "signoff": design.signoff,
        "montecarlo": design.montecarlo,
        "standby": design.standby,
        "policy": design.policy,
        "sweep": design.sweep,
    }.get(kind)
    if method is None:
        raise ServiceError(f"unhandled job kind {kind!r}")
    return method(request)


def _shard_run(kind: str, circuit: str, request_payload: dict | None,
               config_payload: dict) -> dict:
    """Worker-side job execution: payload dicts in, payload dict out."""
    from repro.api import schemas

    config = schemas.from_dict(config_payload)
    request = None if request_payload is None \
        else schemas.from_dict(request_payload)
    design = _WORKSPACE.design(circuit, config)
    return schemas.check_round_trip(execute_kind(design, kind, request))


class ShardPool:
    """N single-worker executors, routed by design fingerprint."""

    def __init__(self, shards: int, library=None, jobs: int = 1):
        self.shards = max(1, int(shards))
        self._library = library
        self._jobs = max(1, int(jobs))
        self._lock = threading.Lock()
        self._executors: list[ProcessPoolExecutor | None] = \
            [None] * self.shards
        self._closed = False

    def shard_for(self, fingerprint: str) -> int:
        return shard_index(fingerprint, self.shards)

    def _executor(self, index: int) -> ProcessPoolExecutor:
        with self._lock:
            if self._closed:
                raise ShardError("shard pool is closed")
            executor = self._executors[index]
            if executor is None:
                executor = ProcessPoolExecutor(
                    max_workers=1, initializer=_shard_init,
                    initargs=(self._library, self._jobs))
                self._executors[index] = executor
            return executor

    def run(self, kind: str, circuit: str, fingerprint: str,
            request_payload: dict | None, config_payload: dict) -> dict:
        """Execute one job on its design's shard; blocks until done.

        Exceptions raised by the job inside the worker propagate
        unchanged; a *dead worker process* becomes a
        :class:`ShardError` and the shard's executor is rebuilt.
        """
        index = self.shard_for(fingerprint)
        executor = self._executor(index)
        future = executor.submit(_shard_run, kind, circuit,
                                 request_payload, config_payload)
        try:
            return future.result()
        except BrokenProcessPool as exc:
            self._rebuild(index, executor)
            raise ShardError(
                f"shard {index} worker process died while running "
                f"{kind} on {circuit!r} (killed or crashed); the shard "
                f"has been restarted — resubmit the job") from exc

    def _rebuild(self, index: int, broken: ProcessPoolExecutor):
        with self._lock:
            if self._executors[index] is broken:
                self._executors[index] = None
        broken.shutdown(wait=False)

    def worker_pids(self) -> dict[int, list[int]]:
        """Live worker pids per shard (spawned shards only; tests)."""
        with self._lock:
            executors = list(self._executors)
        pids: dict[int, list[int]] = {}
        for index, executor in enumerate(executors):
            processes = getattr(executor, "_processes", None) or {}
            if processes:
                pids[index] = list(processes)
        return pids

    def close(self):
        with self._lock:
            self._closed = True
            executors, self._executors = \
                self._executors, [None] * self.shards
        for executor in executors:
            if executor is not None:
                executor.shutdown(wait=False, cancel_futures=True)
