"""Schema registrations for the pre-facade (legacy) result types.

The ``as_dict()`` methods that used to live on
:class:`~repro.experiments.CornerSignoffResult`,
:class:`~repro.experiments.MonteCarloStudy`,
:class:`~repro.variation.signoff.CornerResult`,
:class:`~repro.power.leakage.LeakageBreakdown` and
:class:`~repro.core.artifacts.ExportManifest` each invented their own
payload shape.  This module re-expresses every one of them as a
registered schema — same keys as before (existing consumers keep
parsing), plus the ``schema``/``schema_version`` stamp and a faithful
decoder, so all of them now satisfy the
``from_dict(to_dict(x)) == x`` contract.

Import order note: this module imports the legacy modules, never the
reverse — their ``as_dict()`` methods lazily call into
:mod:`repro.api.schemas` at run time, which is safe once the package
has been imported anywhere.
"""

from __future__ import annotations

from repro.api import schemas
from repro.api import results as _results  # noqa: F401  (registers
#                                           mc_statistics, nested below)
from repro.config import FlowConfig, Technique
from repro.core.artifacts import ExportManifest
from repro.experiments import (
    CornerSignoffResult,
    McTechniqueResult,
    MonteCarloStudy,
)
from repro.power.leakage import LeakageBreakdown
from repro.variation.corners import PvtCorner
from repro.variation.jobs import CornerOutcome, CornerRow
from repro.variation.montecarlo import McSample
from repro.variation.signoff import CornerResult

schemas.dataclass_schema("flow_config", 1, FlowConfig,
                         signoff_corners=schemas.TUPLE,
                         standby_scenarios=schemas.TUPLE)

schemas.dataclass_schema("export_manifest", 1, ExportManifest)

schemas.dataclass_schema("mc_sample", 1, McSample,
                         wns=schemas.opt(schemas.FLOAT))

_ENC_F, _DEC_F = schemas.FLOAT


def _encode_leakage(breakdown: LeakageBreakdown) -> dict:
    # The historical self-describing shape (totals + per-category
    # shares) plus ``per_instance`` so the payload decodes faithfully.
    return {
        "total_nw": breakdown.total_nw,
        **breakdown.category_values(),
        "instance_count": breakdown.instance_count,
        "shares_pct": breakdown.shares_pct(),
        "per_instance": dict(breakdown.per_instance),
    }


def _decode_leakage(payload: dict) -> LeakageBreakdown:
    return LeakageBreakdown(
        total_nw=payload["total_nw"],
        instance_count=payload["instance_count"],
        per_instance=dict(payload.get("per_instance", {})),
        **{category: payload[category]
           for category in LeakageBreakdown.CATEGORIES})


schemas.register("leakage_breakdown", 1, LeakageBreakdown,
                 _encode_leakage, _decode_leakage)


def _encode_corner_result(result: CornerResult) -> dict:
    corner = result.corner
    return {
        # Flattened corner identity (historical shape) ...
        "corner": corner.name,
        "process": corner.process,
        "vdd": corner.vdd,
        "temperature_c": corner.temperature_c,
        # ... plus the exact stored Kelvin so decoding is bit-faithful.
        "temperature_k": corner.temperature_k,
        "leakage_nw": result.leakage_nw,
        "wns": _ENC_F(result.wns),
        "hold_wns": _ENC_F(result.hold_wns),
        "delay_scale_low": result.delay_scale_low,
        "delay_scale_high": result.delay_scale_high,
        "leakage_scale_low": result.leakage_scale_low,
        "leakage_scale_high": result.leakage_scale_high,
        "leakage": (schemas.to_dict(result.leakage)
                    if result.leakage is not None else None),
    }


def _decode_corner_result(payload: dict) -> CornerResult:
    corner = PvtCorner(name=payload["corner"], process=payload["process"],
                       vdd=payload["vdd"],
                       temperature_k=payload["temperature_k"])
    leakage = payload.get("leakage")
    return CornerResult(
        corner=corner,
        leakage_nw=payload["leakage_nw"],
        wns=_DEC_F(payload["wns"]),
        hold_wns=_DEC_F(payload["hold_wns"]),
        delay_scale_low=payload["delay_scale_low"],
        delay_scale_high=payload["delay_scale_high"],
        leakage_scale_low=payload["leakage_scale_low"],
        leakage_scale_high=payload["leakage_scale_high"],
        leakage=schemas.from_dict(leakage) if leakage is not None else None)


schemas.register("corner_result", 1, CornerResult,
                 _encode_corner_result, _decode_corner_result)


def _encode_corner_signoff(result: CornerSignoffResult) -> dict:
    return {
        "corners": list(result.corners),
        "results": [
            {
                "circuit": circuit,
                "technique": technique.value,
                "area_um2": outcome.area_um2,
                "nominal_leakage_nw": outcome.nominal_leakage_nw,
                "nominal_wns": _ENC_F(outcome.nominal_wns),
                "corners": [
                    {"corner": row.corner, "leakage_nw": row.leakage_nw,
                     "wns": _ENC_F(row.wns),
                     "hold_wns": _ENC_F(row.hold_wns)}
                    for row in outcome.rows
                ],
                "error": outcome.error,
            }
            for (circuit, technique), outcome in result.outcomes.items()
        ],
    }


def _decode_corner_signoff(payload: dict) -> CornerSignoffResult:
    outcomes = {}
    for entry in payload["results"]:
        technique = Technique(entry["technique"])
        outcomes[(entry["circuit"], technique)] = CornerOutcome(
            circuit=entry["circuit"],
            technique=technique,
            area_um2=entry["area_um2"],
            nominal_leakage_nw=entry["nominal_leakage_nw"],
            nominal_wns=_DEC_F(entry["nominal_wns"]),
            rows=[CornerRow(corner=row["corner"],
                            leakage_nw=row["leakage_nw"],
                            wns=_DEC_F(row["wns"]),
                            hold_wns=_DEC_F(row["hold_wns"]))
                  for row in entry["corners"]],
            error=entry["error"])
    return CornerSignoffResult(corners=tuple(payload["corners"]),
                               outcomes=outcomes)


schemas.register("corner_signoff_report", 1, CornerSignoffResult,
                 _encode_corner_signoff, _decode_corner_signoff)


def _encode_mc_study(study: MonteCarloStudy) -> dict:
    return {
        "circuit": study.circuit,
        "samples": study.samples,
        "seed": study.seed,
        "corner": study.corner,
        "results": {
            technique.value: {
                "nominal_leakage_nw": res.nominal_leakage_nw,
                "nominal_wns": (None if res.nominal_wns is None
                                else _ENC_F(res.nominal_wns)),
                "area_um2": res.area_um2,
                "statistics": schemas.to_dict(res.statistics),
                # Per-die samples stay in-process (McTechniqueResult
                # excludes them from equality): a 10k-sample study
                # would bloat the report for data the statistics
                # already summarize.
            }
            for technique, res in study.results.items()
        },
    }


def _decode_mc_study(payload: dict) -> MonteCarloStudy:
    results = {}
    for name, entry in payload["results"].items():
        nominal_wns = entry["nominal_wns"]
        results[Technique(name)] = McTechniqueResult(
            nominal_leakage_nw=entry["nominal_leakage_nw"],
            nominal_wns=(None if nominal_wns is None
                         else _DEC_F(nominal_wns)),
            area_um2=entry["area_um2"],
            statistics=schemas.from_dict(entry["statistics"]),
            samples=[schemas.from_dict(s)
                     for s in entry.get("sample_values", [])])
        # (sample_values is accepted for forward compatibility but no
        # longer emitted.)
    return MonteCarloStudy(circuit=payload["circuit"],
                           samples=payload["samples"],
                           seed=payload["seed"],
                           corner=payload["corner"],
                           results=results)


schemas.register("montecarlo_study", 1, MonteCarloStudy,
                 _encode_mc_study, _decode_mc_study)
