"""Typed request objects for the :class:`~repro.api.Workspace` facade.

Every :class:`~repro.api.Design` capability takes one frozen request
dataclass (hashable, so requests double as cache keys) and returns one
typed result from :mod:`repro.api.results`.  Requests are registered
in the schema registry, so a job-service submission body *is* a
request payload — the HTTP layer and the in-process facade speak the
same language.

Field validation raises :class:`~repro.errors.ConfigError` naming the
offending field, mirroring :class:`~repro.config.FlowConfig`.
"""

from __future__ import annotations

import dataclasses

from repro.api import schemas
from repro.config import Technique
from repro.errors import ConfigError
from repro.standby.scenario import PowerModeScenario


def _check_scenario_payloads(payloads, names) -> None:
    """Shared user-defined-scenario validation (standby + policy)."""
    seen: set[str] = set(names)
    for payload in payloads:
        if not isinstance(payload, PowerModeScenario):
            raise ConfigError(
                "scenario_payloads",
                f"entries must be PowerModeScenario, got {payload!r}")
        if payload.name in seen:
            raise ConfigError(
                "scenario_payloads",
                f"duplicate scenario name {payload.name!r}")
        seen.add(payload.name)

#: Mapped-variant names accepted by :class:`AnalyzeRequest`.
ANALYZE_VARIANTS = ("lvt", "hvt")

#: Every technique, in Table 1 order (the enum declaration order).
DEFAULT_TECHNIQUES = tuple(Technique)

TECHNIQUE = (lambda t: t.value, Technique)


@dataclasses.dataclass(frozen=True)
class AnalyzeRequest:
    """Baseline analysis: STA + leakage of the design as loaded.

    The netlist is technology-mapped to one Vth class (no flow, no
    optimization) and analyzed against the config-derived clock — the
    "what am I starting from" probe that every optimization decision
    is normalized against.
    """

    variant: str = "lvt"

    def __post_init__(self):
        if self.variant not in ANALYZE_VARIANTS:
            raise ConfigError(
                "variant",
                f"must be one of {ANALYZE_VARIANTS}, got {self.variant!r}")


@dataclasses.dataclass(frozen=True)
class OptimizeRequest:
    """Run one of the paper's techniques end to end (the Fig. 4 flow)."""

    technique: Technique = Technique.IMPROVED_SMT


@dataclasses.dataclass(frozen=True)
class SignoffRequest:
    """Multi-corner signoff of one technique's finished design.

    An empty ``corners`` tuple means the technology's default signoff
    set (nominal + worst leakage + worst timing).
    """

    technique: Technique = Technique.IMPROVED_SMT
    corners: tuple[str, ...] = ()

    def __post_init__(self):
        if not all(isinstance(c, str) and c for c in self.corners):
            raise ConfigError(
                "corners", f"must be non-empty names, got {self.corners!r}")


@dataclasses.dataclass(frozen=True)
class MonteCarloRequest:
    """Monte-Carlo Vth-variation study of one technique's design.

    Mirrors :class:`~repro.variation.montecarlo.McConfig`; sample ``k``
    stays a pure function of ``(seed, k)``, so results are identical
    for any worker fan-out.
    """

    technique: Technique = Technique.IMPROVED_SMT
    samples: int = 64
    seed: int = 1
    sigma_global_v: float = 0.03
    sigma_local_v: float = 0.015
    timing: bool = True
    corner: str | None = None
    leakage_budget_nw: float | None = None

    def __post_init__(self):
        if self.samples < 1:
            raise ConfigError(
                "samples", f"needs at least one, got {self.samples!r}")
        if self.sigma_global_v < 0:
            raise ConfigError(
                "sigma_global_v",
                f"must be non-negative, got {self.sigma_global_v!r}")
        if self.sigma_local_v < 0:
            raise ConfigError(
                "sigma_local_v",
                f"must be non-negative, got {self.sigma_local_v!r}")


@dataclasses.dataclass(frozen=True)
class StandbyRequest:
    """Standby-transition study of one technique's finished design.

    Empty ``scenarios`` means every built-in power-mode scenario
    (:func:`repro.standby.scenario.standard_scenarios`); empty
    ``corners`` means the technology's default signoff set, so wake
    latency and rush current are checked where they are worst.
    ``rush_budget_ma=None`` derives the default di/dt budget.

    ``scenario_payloads`` carries fully user-defined scenarios (any
    distribution, including ``empirical`` quantile grids built from
    idle traces by :mod:`repro.policy.traces`); they are evaluated
    alongside the named ones, and names must not collide.
    """

    technique: Technique = Technique.IMPROVED_SMT
    scenarios: tuple[str, ...] = ()
    scenario_payloads: tuple[PowerModeScenario, ...] = ()
    corners: tuple[str, ...] = ()
    rush_budget_ma: float | None = None
    settle_fraction: float = 0.05

    def __post_init__(self):
        if not all(isinstance(s, str) and s for s in self.scenarios):
            raise ConfigError(
                "scenarios",
                f"must be non-empty names, got {self.scenarios!r}")
        _check_scenario_payloads(self.scenario_payloads, self.scenarios)
        if not all(isinstance(c, str) and c for c in self.corners):
            raise ConfigError(
                "corners", f"must be non-empty names, got {self.corners!r}")
        if self.rush_budget_ma is not None and self.rush_budget_ma <= 0:
            raise ConfigError(
                "rush_budget_ma",
                f"must be positive when set, got {self.rush_budget_ma!r}")
        if not 0.0 < self.settle_fraction < 0.5:
            raise ConfigError(
                "settle_fraction",
                f"must be in (0, 0.5), got {self.settle_fraction!r}")


@dataclasses.dataclass(frozen=True)
class PolicyRequest:
    """Sleep-policy sweep of one technique's finished design.

    Sweeps at least ``candidates`` (domain plan, per-domain threshold)
    policies through the batched scenario engine and returns the
    Pareto front of (net savings, worst wake latency, peak rush).
    Scenario and corner semantics match :class:`StandbyRequest`
    (including user-defined ``scenario_payloads``); ``max_domains``
    bounds the hierarchical power-domain plans swept alongside the
    per-cluster plan.
    """

    technique: Technique = Technique.IMPROVED_SMT
    scenarios: tuple[str, ...] = ()
    scenario_payloads: tuple[PowerModeScenario, ...] = ()
    corners: tuple[str, ...] = ()
    candidates: int = 1024
    max_domains: int = 4
    rush_budget_ma: float | None = None
    settle_fraction: float = 0.05

    def __post_init__(self):
        if not all(isinstance(s, str) and s for s in self.scenarios):
            raise ConfigError(
                "scenarios",
                f"must be non-empty names, got {self.scenarios!r}")
        _check_scenario_payloads(self.scenario_payloads, self.scenarios)
        if not all(isinstance(c, str) and c for c in self.corners):
            raise ConfigError(
                "corners", f"must be non-empty names, got {self.corners!r}")
        if self.candidates < 1:
            raise ConfigError(
                "candidates",
                f"needs at least one, got {self.candidates!r}")
        if self.max_domains < 1:
            raise ConfigError(
                "max_domains",
                f"needs at least one domain, got {self.max_domains!r}")
        if self.rush_budget_ma is not None and self.rush_budget_ma <= 0:
            raise ConfigError(
                "rush_budget_ma",
                f"must be positive when set, got {self.rush_budget_ma!r}")
        if not 0.0 < self.settle_fraction < 0.5:
            raise ConfigError(
                "settle_fraction",
                f"must be in (0, 0.5), got {self.settle_fraction!r}")


@dataclasses.dataclass(frozen=True)
class SweepRequest:
    """Compare techniques on the design (one Table 1 row group)."""

    techniques: tuple[Technique, ...] = DEFAULT_TECHNIQUES

    def __post_init__(self):
        if not self.techniques:
            raise ConfigError("techniques", "must name at least one")


schemas.dataclass_schema("analyze_request", 1, AnalyzeRequest)
schemas.dataclass_schema("optimize_request", 1, OptimizeRequest,
                         technique=TECHNIQUE)
schemas.dataclass_schema("signoff_request", 1, SignoffRequest,
                         technique=TECHNIQUE, corners=schemas.TUPLE)
schemas.dataclass_schema("montecarlo_request", 1, MonteCarloRequest,
                         technique=TECHNIQUE)
schemas.dataclass_schema("standby_request", 1, StandbyRequest,
                         technique=TECHNIQUE, scenarios=schemas.TUPLE,
                         scenario_payloads=schemas.seq(schemas.NESTED),
                         corners=schemas.TUPLE)
schemas.dataclass_schema("policy_request", 1, PolicyRequest,
                         technique=TECHNIQUE, scenarios=schemas.TUPLE,
                         scenario_payloads=schemas.seq(schemas.NESTED),
                         corners=schemas.TUPLE)
schemas.dataclass_schema("sweep_request", 1, SweepRequest,
                         techniques=schemas.seq(TECHNIQUE))
