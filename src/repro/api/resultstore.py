"""Persistent on-disk store of finished job-service result payloads.

The job service's warm path is the :class:`~repro.api.Workspace`
cache — but that dies with the process.  Every service result is
already durable-serializable (it went through
``schemas.check_round_trip`` before landing on the job), so this
module persists the *payload dict* itself: a restarted service (or a
second process pointed at the same directory) answers a previously
computed request straight from disk without recompiling anything.

Store key — SHA-256 over:

* :data:`FORMAT_VERSION` (a bump changes every key, so stale entries
  simply miss and age out);
* the job kind;
* the netlist **content fingerprint**
  (:func:`repro.netlist.fingerprint.netlist_fingerprint`), never the
  display name — renamed-but-identical designs share entries;
* the canonical JSON of the request payload (which carries the
  request's ``schema`` name and ``schema_version``, so a request
  schema bump re-keys), or ``null`` for facade-default requests;
* the canonical JSON of the :class:`~repro.config.FlowConfig`
  overrides (the config digest).

Robustness contract (same as :mod:`repro.compute.lowercache`):

* loads are corruption-safe — any unreadable / truncated / mismatched
  entry counts a miss **and an error**, is unlinked, and the job
  simply executes;
* stores are atomic (temp file + ``os.replace``), so a crashed writer
  can never publish a partial entry;
* the directory is capped at :data:`DEFAULT_MAX_ENTRIES` entries
  (override with ``REPRO_RESULT_STORE_MAX``), evicting oldest-mtime
  first; hits refresh mtime, making eviction LRU-ish.

Enable via ``repro-smt serve --result-store DIR`` (or the
``REPRO_RESULT_STORE`` environment variable).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from pathlib import Path

#: On-disk entry layout version; bump when the envelope shape changes.
FORMAT_VERSION = 1

ENV_VAR = "REPRO_RESULT_STORE"
ENV_MAX_ENTRIES = "REPRO_RESULT_STORE_MAX"
DEFAULT_MAX_ENTRIES = 256


def canonical_json(payload) -> str:
    """Deterministic JSON text: the serialization half of every key."""
    return json.dumps(payload, sort_keys=True, allow_nan=False)


def work_key(kind: str, fingerprint: str, request_payload: dict | None,
             config_payload: dict) -> str:
    """Content key of one unit of service work.

    Equal key => the computation is identical, so it doubles as both
    the result-store key and the in-flight coalescing key.
    """
    digest = hashlib.sha256()
    for part in (f"format {FORMAT_VERSION}",
                 f"kind {kind}",
                 f"netlist {fingerprint}",
                 f"request {canonical_json(request_payload)}",
                 f"config {canonical_json(config_payload)}"):
        digest.update(part.encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


def default_directory() -> Path | None:
    """The ``REPRO_RESULT_STORE`` directory, or None when unset."""
    raw = os.environ.get(ENV_VAR, "").strip()
    if not raw or raw.lower() in ("0", "off", "none", "disabled"):
        return None
    return Path(raw)


def _env_max_entries() -> int:
    try:
        return max(1, int(os.environ.get(ENV_MAX_ENTRIES, "")))
    except ValueError:
        return DEFAULT_MAX_ENTRIES


class ResultStore:
    """One result-store directory with self-locking hit/miss counters."""

    def __init__(self, directory: str | Path,
                 max_entries: int | None = None):
        self.directory = Path(directory)
        self.max_entries = _env_max_entries() if max_entries is None \
            else max(1, int(max_entries))
        self._lock = threading.Lock()
        self._counters = {"hits": 0, "misses": 0, "stores": 0,
                          "evictions": 0, "errors": 0}

    def _bump(self, name: str, amount: int = 1):
        with self._lock:
            self._counters[name] += amount

    def stats(self) -> dict[str, int]:
        """Counters (hits/misses/stores/evictions/errors); a metrics
        source for the :data:`repro.obs.REGISTRY`."""
        with self._lock:
            return dict(self._counters)

    def _entry_path(self, key: str) -> Path:
        return self.directory / f"result-{key}.json"

    # --- the contract -------------------------------------------------------

    def load(self, key: str) -> dict | None:
        """The stored payload under ``key``; None on miss/corruption."""
        path = self._entry_path(key)
        if not path.exists():
            self._bump("misses")
            return None
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
            if entry.get("format_version") != FORMAT_VERSION:
                raise ValueError("format version mismatch")
            if entry.get("key") != key:
                raise ValueError("key mismatch")
            payload = entry["payload"]
            if not isinstance(payload, dict):
                raise ValueError("payload is not an object")
        except Exception:
            # Truncated, corrupt, stale-format or plain unreadable:
            # count a miss, drop the entry so it cannot poison reloads.
            self._bump("errors")
            self._bump("misses")
            try:
                path.unlink()
            except OSError:
                pass
            return None
        try:
            os.utime(path)  # LRU-ish: a hit refreshes eviction age
        except OSError:
            pass
        self._bump("hits")
        return payload

    def store(self, key: str, payload: dict) -> bool:
        """Atomically persist ``payload``; False on any I/O failure."""
        tmp_path = None
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            body = canonical_json({"format_version": FORMAT_VERSION,
                                   "key": key, "payload": payload})
            fd, tmp_path = tempfile.mkstemp(dir=self.directory,
                                            suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(body)
            os.replace(tmp_path, self._entry_path(key))
            tmp_path = None
            self._bump("stores")
            self._evict()
            return True
        except (OSError, ValueError):
            self._bump("errors")
            if tmp_path is not None:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
            return False

    def _evict(self):
        """Drop oldest-mtime entries beyond the configured cap."""
        try:
            entries = sorted(self.directory.glob("result-*.json"),
                             key=lambda p: p.stat().st_mtime)
        except OSError:
            return
        for path in entries[:max(len(entries) - self.max_entries, 0)]:
            try:
                path.unlink()
                self._bump("evictions")
            except OSError:
                pass
