"""Grid studies over a workspace (the paper's evaluation harness).

These are the implementations behind the legacy entry points in
:mod:`repro.experiments` and :func:`repro.core.compare.compare_techniques`
— moved here so the deprecation shims are genuinely thin.  The numeric
paths are unchanged: serial runs route through the
:class:`~repro.api.Workspace` flow caches (same float operations as
the old in-process loops), parallel runs fan the same grids out over
:class:`~repro.runner.ExperimentRunner` exactly as before, so every
digit matches the pre-facade behavior.
"""

from __future__ import annotations

from repro.api.workspace import Workspace
from repro.config import FlowConfig, Technique
from repro.core.compare import (
    ComparisonRow,
    TechniqueComparison,
    count_cell_kinds,
)
from repro.errors import FlowError
from repro.liberty.library import Library
from repro.netlist.core import Netlist


def technique_comparison(netlist: Netlist, library: Library,
                         config: FlowConfig | None = None,
                         circuit_name: str | None = None,
                         techniques: tuple[Technique, ...] = (
                             Technique.DUAL_VTH,
                             Technique.CONVENTIONAL_SMT,
                             Technique.IMPROVED_SMT),
                         jobs: int = 1,
                         workspace: Workspace | None = None
                         ) -> TechniqueComparison:
    """Run the requested techniques and normalize to Dual-Vth.

    Serial runs keep the full per-technique ``results`` dict (flow
    results come from — and land in — the workspace cache); parallel
    runs return slim rows only, exactly like the legacy path.
    """
    config = config or FlowConfig()
    circuit_name = circuit_name or netlist.name
    if jobs > 1:
        from repro.runner import (
            ExperimentRunner,
            FlowJob,
            comparison_from_outcomes,
        )

        flow_jobs = [FlowJob(circuit=circuit_name, technique=technique,
                             config=config, netlist=netlist)
                     for technique in techniques]
        outcomes = ExperimentRunner(jobs=jobs, library=library).run(flow_jobs)
        return comparison_from_outcomes(circuit_name, outcomes)
    workspace = workspace or Workspace(library=library)
    design = workspace.adopt(netlist, name=circuit_name, config=config)
    results = {technique: design.flow_result(technique)
               for technique in techniques}

    # Normalize to Dual-Vth when present; otherwise the first
    # requested technique becomes the 100 % reference.
    baseline = results.get(Technique.DUAL_VTH)
    if baseline is None and techniques:
        baseline = results[techniques[0]]
    base_area = baseline.total_area if baseline else 1.0
    base_leak = baseline.leakage_nw if baseline else 1.0

    rows = []
    for technique in techniques:
        result = results[technique]
        mt, switches, holders = count_cell_kinds(result.netlist, library)
        rows.append(ComparisonRow(
            circuit=circuit_name,
            technique=technique,
            area_um2=result.total_area,
            leakage_nw=result.leakage_nw,
            area_pct=100.0 * result.total_area / base_area,
            leakage_pct=100.0 * result.leakage_nw / base_leak,
            mt_cells=mt, switches=switches, holders=holders))
    return TechniqueComparison(circuit=circuit_name, rows=rows,
                               results=results)


def table1_study(workspace: Workspace,
                 circuits: tuple[str, ...] = ("A", "B"),
                 jobs: int = 1):
    """The full Table 1 experiment (three flows per circuit)."""
    from repro.experiments import Table1Result, table1_config

    comparisons: dict[str, TechniqueComparison] = {}
    if jobs > 1:
        from repro.runner import (
            ALL_TECHNIQUES,
            ExperimentRunner,
            FlowJob,
            comparison_from_outcomes,
        )

        flow_jobs = [FlowJob(circuit=f"circuit{short}", technique=technique,
                             config=table1_config(short))
                     for short in circuits for technique in ALL_TECHNIQUES]
        outcomes = ExperimentRunner(
            jobs=jobs, library=workspace.library).run(flow_jobs)
        per_circuit = len(ALL_TECHNIQUES)
        for index, short in enumerate(circuits):
            chunk = outcomes[index * per_circuit:(index + 1) * per_circuit]
            comparisons[short] = comparison_from_outcomes(short, chunk)
        return Table1Result(comparisons=comparisons)
    for short in circuits:
        comparisons[short] = technique_comparison(
            workspace.netlist(f"circuit{short}"), workspace.library,
            table1_config(short), circuit_name=short, workspace=workspace)
    return Table1Result(comparisons=comparisons)


def corner_signoff_study(workspace: Workspace,
                         circuits: tuple[str, ...],
                         techniques=None,
                         corners: tuple[str, ...] | None = None,
                         config: FlowConfig | None = None,
                         jobs: int = 1):
    """Corner signoff across a circuit x technique grid.

    Every (circuit, technique) pair is one flow-plus-signoff job,
    fanned out through the experiment runner; deterministic for any
    ``jobs``.
    """
    from repro.experiments import (
        CornerSignoffResult,
        _circuit_config,
        _resolve_circuit,
    )
    from repro.runner import ALL_TECHNIQUES, ExperimentRunner
    from repro.variation.corners import default_signoff_corners
    from repro.variation.jobs import CornerJob, run_corner_job

    library = workspace.library
    techniques = tuple(techniques or ALL_TECHNIQUES)
    corners = tuple(corners or default_signoff_corners(library.tech))
    labeled_grid = [
        (short, CornerJob(circuit=_resolve_circuit(short),
                          technique=technique,
                          config=_circuit_config(short, config),
                          corners=corners))
        for short in circuits for technique in techniques]
    grid = [job for _, job in labeled_grid]
    outcomes = ExperimentRunner(jobs=jobs, library=library).map(
        run_corner_job, grid)
    failed = [o for o in outcomes if not o.ok]
    if failed:
        first = failed[0]
        raise FlowError(
            f"{len(failed)} corner job(s) failed "
            f"({first.circuit}/{first.technique.value}):\n{first.error}")
    keyed = {(short, job.technique): outcome
             for (short, job), outcome in zip(labeled_grid, outcomes)}
    return CornerSignoffResult(corners=corners, outcomes=keyed)


def montecarlo_study(workspace: Workspace,
                     circuit: str = "A",
                     techniques=None,
                     samples: int = 64,
                     seed: int = 1,
                     sigma_global_v: float = 0.03,
                     sigma_local_v: float = 0.015,
                     timing: bool = True,
                     corner: str | None = None,
                     leakage_budget_nw: float | None = None,
                     config: FlowConfig | None = None,
                     jobs: int = 1):
    """Monte-Carlo leakage/timing study across techniques.

    Samples are chunked across the experiment runner; sample ``k`` is
    a pure function of ``(seed, k)``, so merged statistics are
    identical for any ``jobs``.
    """
    from repro.experiments import (
        McTechniqueResult,
        MonteCarloStudy,
        _circuit_config,
        _resolve_circuit,
    )
    from repro.runner import ALL_TECHNIQUES, ExperimentRunner
    from repro.variation.jobs import McJob, run_mc_job
    from repro.variation.montecarlo import McConfig, summarize

    library = workspace.library
    techniques = tuple(techniques or ALL_TECHNIQUES)
    mc = McConfig(samples=samples, seed=seed,
                  sigma_global_v=sigma_global_v,
                  sigma_local_v=sigma_local_v, timing=timing,
                  leakage_budget_nw=leakage_budget_nw)
    flow_config = _circuit_config(circuit, config)
    resolved = _resolve_circuit(circuit)
    chunks = min(max(1, jobs), samples)
    bounds = [(index * samples // chunks,
               (index + 1) * samples // chunks) for index in range(chunks)]
    grid = [McJob(circuit=resolved, technique=technique, config=flow_config,
                  mc=mc, corner=corner, start=start, count=stop - start)
            for technique in techniques for (start, stop) in bounds]
    outcomes = ExperimentRunner(jobs=jobs, library=library).map(
        run_mc_job, grid)
    failed = [o for o in outcomes if not o.ok]
    if failed:
        first = failed[0]
        raise FlowError(
            f"{len(failed)} Monte-Carlo job(s) failed "
            f"({first.circuit}/{first.technique.value}):\n{first.error}")
    results: dict[Technique, McTechniqueResult] = {}
    per_technique = len(bounds)
    for index, technique in enumerate(techniques):
        chunk = outcomes[index * per_technique:(index + 1) * per_technique]
        merged = [sample for outcome in chunk for sample in outcome.samples]
        budget = mc.leakage_budget_nw
        if budget is None:
            budget = mc.budget_factor * chunk[0].nominal_leakage_nw
        results[technique] = McTechniqueResult(
            nominal_leakage_nw=chunk[0].nominal_leakage_nw,
            nominal_wns=chunk[0].nominal_wns,
            area_um2=chunk[0].area_um2,
            statistics=summarize(merged, leakage_budget_nw=budget),
            samples=merged)
    return MonteCarloStudy(circuit=resolved, samples=samples, seed=seed,
                           corner=corner, results=results)
