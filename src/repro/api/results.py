"""Typed result objects returned by the :class:`~repro.api.Design` facade.

Every result is a frozen, JSON-safe dataclass registered in the schema
registry, so ``schemas.to_dict(result)`` / ``schemas.from_dict(payload)``
round-trip exactly (enforced by :func:`repro.api.schemas.check_round_trip`
on every CLI ``--json`` emission and every job-service result).

Results are deliberately slim — numbers, names and nested registered
types only, never live engine objects — so the same value crosses
process and HTTP boundaries unchanged.  The heavyweight artifacts (a
full :class:`~repro.core.flow.FlowResult`) stay cached inside the
:class:`~repro.api.Workspace` and are reachable via
``Design.flow_result()`` for in-process consumers (rendering, export).
"""

from __future__ import annotations

import dataclasses

from repro.api import schemas
from repro.api.requests import TECHNIQUE
from repro.config import Technique
from repro.obs import MetricsSnapshot, SpanNode, TraceResult
from repro.policy.domains import DomainPlan, PowerDomain
from repro.policy.optimize import PolicyPoint, PolicyResult
from repro.standby.engine import (
    ScenarioOutcome,
    StandbyCornerRow,
    StandbyResult,
)
from repro.standby.scenario import PowerModeScenario
from repro.standby.schedule import WakeupEvent, WakeupSchedule
from repro.standby.transient import ClusterTransient
from repro.variation.montecarlo import McSample, McStatistics


@dataclasses.dataclass(frozen=True)
class AnalyzeResult:
    """Baseline STA + leakage of the design as loaded (no flow)."""

    circuit: str
    fingerprint: str
    variant: str
    instances: int
    clock_period_ns: float
    wns: float
    hold_wns: float
    leakage_nw: float
    leakage_by_category: dict[str, float]
    compute_backend: str


@dataclasses.dataclass(frozen=True)
class OptimizeResult:
    """One technique's finished flow, Table 1 columns included."""

    circuit: str
    fingerprint: str
    technique: Technique
    area_um2: float
    leakage_nw: float
    wns: float
    hold_wns: float
    mt_cells: int
    switches: int
    holders: int
    stages: tuple[str, ...]


@dataclasses.dataclass(frozen=True)
class SignoffCornerRow:
    """One corner's numbers for a signed-off design."""

    corner: str
    leakage_nw: float
    wns: float
    hold_wns: float


@dataclasses.dataclass(frozen=True)
class SignoffResult:
    """Multi-corner signoff of one technique's finished design."""

    circuit: str
    technique: Technique
    corners: tuple[str, ...]
    area_um2: float
    nominal_leakage_nw: float
    nominal_wns: float
    rows: tuple[SignoffCornerRow, ...]

    def row(self, corner: str) -> SignoffCornerRow:
        for row in self.rows:
            if row.corner == corner:
                return row
        raise KeyError(f"no signoff row for corner {corner!r}")


@dataclasses.dataclass(frozen=True)
class MonteCarloResult:
    """Monte-Carlo study of one technique's finished design."""

    circuit: str
    technique: Technique
    corner: str | None
    samples: int
    seed: int
    area_um2: float
    nominal_leakage_nw: float
    nominal_wns: float | None
    statistics: McStatistics
    #: Per-die samples in index order (sample ``k`` is a pure function
    #: of ``(seed, k)``, so this tuple is fan-out independent).  Kept
    #: for in-process consumers only: excluded from serialization (a
    #: 10k-sample study would bloat every report/HTTP response with
    #: data the statistics already summarize) and from equality, so
    #: payloads stay slim and still round-trip.
    sample_values: tuple[McSample, ...] = dataclasses.field(
        default=(), compare=False)


@dataclasses.dataclass(frozen=True)
class SweepRow:
    """One (circuit, technique) row, normalized to the Dual-Vth base."""

    circuit: str
    technique: Technique
    area_um2: float
    leakage_nw: float
    area_pct: float
    leakage_pct: float
    mt_cells: int
    switches: int
    holders: int


@dataclasses.dataclass(frozen=True)
class SweepResult:
    """Technique comparison rows across one or more circuits."""

    rows: tuple[SweepRow, ...]

    def row(self, circuit: str, technique: Technique) -> SweepRow:
        for row in self.rows:
            if row.circuit == circuit and row.technique == technique:
                return row
        raise KeyError(f"no row for ({circuit!r}, {technique})")

    def circuits(self) -> tuple[str, ...]:
        seen: list[str] = []
        for row in self.rows:
            if row.circuit not in seen:
                seen.append(row.circuit)
        return tuple(seen)

    def render(self) -> str:
        from repro.runner import SWEEP_HEADER

        lines = [SWEEP_HEADER]
        for row in self.rows:
            lines.append(
                f"{row.circuit:<10} {row.technique.value:<18} "
                f"{row.area_pct:8.2f} {row.leakage_pct:8.2f} "
                f"{row.mt_cells:5d} {row.switches:4d} {row.holders:5d}")
        return "\n".join(lines)


schemas.dataclass_schema("analyze_result", 1, AnalyzeResult,
                         wns=schemas.FLOAT, hold_wns=schemas.FLOAT)
schemas.dataclass_schema("optimize_result", 1, OptimizeResult,
                         technique=TECHNIQUE, stages=schemas.TUPLE,
                         wns=schemas.FLOAT, hold_wns=schemas.FLOAT)
schemas.dataclass_schema("signoff_corner_row", 1, SignoffCornerRow,
                         wns=schemas.FLOAT, hold_wns=schemas.FLOAT)
schemas.dataclass_schema("signoff_result", 1, SignoffResult,
                         technique=TECHNIQUE, corners=schemas.TUPLE,
                         nominal_wns=schemas.FLOAT,
                         rows=schemas.seq(schemas.NESTED))
schemas.dataclass_schema("montecarlo_result", 1, MonteCarloResult,
                         exclude=("sample_values",),
                         technique=TECHNIQUE, statistics=schemas.NESTED,
                         nominal_wns=schemas.opt(schemas.FLOAT))
schemas.dataclass_schema("sweep_row", 1, SweepRow, technique=TECHNIQUE)
schemas.dataclass_schema("sweep_result", 1, SweepResult,
                         rows=schemas.seq(schemas.NESTED))

schemas.dataclass_schema("mc_statistics", 1, McStatistics,
                         mean_wns=schemas.opt(schemas.FLOAT),
                         std_wns=schemas.opt(schemas.FLOAT),
                         worst_wns=schemas.opt(schemas.FLOAT))

# --- standby-transition payloads (repro.standby) ----------------------------
# Registered here — not in repro.standby — so the engine stays free of
# api imports; the dataclasses' as_dict() methods delegate lazily,
# exactly like the legacy types in repro.api.registry.

schemas.dataclass_schema("cluster_transient", 1, ClusterTransient,
                         tau_sleep_ns=schemas.FLOAT,
                         sleep_latency_ns=schemas.FLOAT)
schemas.dataclass_schema("wakeup_event", 1, WakeupEvent)
schemas.dataclass_schema("wakeup_schedule", 1, WakeupSchedule,
                         events=schemas.seq(schemas.NESTED))
# (duration, weight) / member-group grids: tuples of tuples <-> lists
# of lists.
_POINT_GRID = (lambda pts: [list(p) for p in pts],
               lambda pts: tuple((float(d), float(w)) for d, w in pts))
_CLUSTER_GROUPS = (lambda gs: [list(g) for g in gs],
                   lambda gs: tuple(tuple(int(i) for i in g) for g in gs))

schemas.dataclass_schema("standby_scenario", 1, PowerModeScenario,
                         points=_POINT_GRID)
schemas.dataclass_schema("scenario_outcome", 1, ScenarioOutcome,
                         break_even_ns=schemas.FLOAT)
schemas.dataclass_schema("standby_corner_row", 1, StandbyCornerRow,
                         break_even_ns=schemas.FLOAT)
schemas.dataclass_schema("standby_result", 1, StandbyResult,
                         technique=TECHNIQUE,
                         scenarios=schemas.TUPLE,
                         corners=schemas.TUPLE,
                         transients=schemas.seq(schemas.NESTED),
                         schedule=schemas.NESTED,
                         corner_rows=schemas.seq(schemas.NESTED),
                         outcomes=schemas.seq(schemas.NESTED))

# --- sleep-policy payloads (repro.policy) -----------------------------------
# Same pattern: registered here so the optimizer stays api-free.

schemas.dataclass_schema("power_domain", 1, PowerDomain,
                         clusters=schemas.TUPLE,
                         break_even_ns=schemas.FLOAT)
schemas.dataclass_schema("domain_plan", 1, DomainPlan,
                         domains=schemas.seq(schemas.NESTED))
schemas.dataclass_schema("policy_point", 1, PolicyPoint,
                         domains=_CLUSTER_GROUPS,
                         thresholds_ns=schemas.seq(schemas.FLOAT))
schemas.dataclass_schema("policy_result", 1, PolicyResult,
                         technique=TECHNIQUE,
                         scenarios=schemas.TUPLE,
                         corners=schemas.TUPLE,
                         plans=schemas.TUPLE,
                         pareto=schemas.seq(schemas.NESTED))

# --- observability payloads (repro.obs) -------------------------------------
# Registered here — not in repro.obs — so the observability package
# stays importable from the hot layers (core, timing, compute) without
# dragging the api package in; same pattern as the standby types above.

schemas.dataclass_schema("span_node", 1, SpanNode,
                         children=schemas.seq(schemas.NESTED))
schemas.dataclass_schema("trace_result", 1, TraceResult,
                         spans=schemas.seq(schemas.NESTED))
schemas.dataclass_schema("metrics_snapshot", 1, MetricsSnapshot)
