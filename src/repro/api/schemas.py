"""One serialization registry for every public result payload.

Before this module each result type grew its own ``as_dict()`` with a
slightly different shape (``experiments.py``, ``variation/signoff.py``,
``variation/montecarlo.py``, ``core/artifacts.py``).  Now every
public payload goes through a single registry:

* :func:`to_dict` — encode a registered object to a JSON-safe dict
  stamped with ``schema`` (the registered name) and ``schema_version``;
* :func:`from_dict` — dispatch on the ``schema`` field and rebuild the
  typed object;
* :func:`check_round_trip` — assert ``from_dict(to_dict(x)) == x``,
  the invariant every CLI ``--json`` emission and service result is
  checked against.

Versioning policy: ``schema_version`` is per-schema and bumps whenever
a field is renamed, removed or re-typed (additive optional fields keep
the version).  :func:`from_dict` refuses payloads whose version is
newer than the code understands; older versions are handled by each
decoder for as long as the deprecation window lasts.

Encoders/decoders are explicit functions (not reflection): the payload
shape is a public contract, so it is spelled out, reviewed and diffed
like one.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Callable

from repro.errors import SchemaError

#: Payload keys stamped on every encoded object.
SCHEMA_KEY = "schema"
VERSION_KEY = "schema_version"


@dataclasses.dataclass(frozen=True)
class SchemaEntry:
    """One registered payload type."""

    name: str
    version: int
    cls: type
    encode: Callable[[Any], dict]
    decode: Callable[[dict], Any]


_BY_NAME: dict[str, SchemaEntry] = {}
_BY_TYPE: dict[type, SchemaEntry] = {}


def register(name: str, version: int, cls: type,
             encode: Callable[[Any], dict],
             decode: Callable[[dict], Any]) -> SchemaEntry:
    """Register one payload type; names and types must be unique."""
    if name in _BY_NAME:
        raise SchemaError(f"schema {name!r} registered twice")
    if cls in _BY_TYPE:
        raise SchemaError(
            f"type {cls.__name__} already bound to schema "
            f"{_BY_TYPE[cls].name!r}")
    entry = SchemaEntry(name=name, version=version, cls=cls,
                        encode=encode, decode=decode)
    _BY_NAME[name] = entry
    _BY_TYPE[cls] = entry
    return entry


def schema_names() -> tuple[str, ...]:
    """Registered schema names, sorted."""
    return tuple(sorted(_BY_NAME))


def entry_for(obj_or_cls) -> SchemaEntry:
    cls = obj_or_cls if isinstance(obj_or_cls, type) else type(obj_or_cls)
    try:
        return _BY_TYPE[cls]
    except KeyError:
        raise SchemaError(
            f"{cls.__name__} has no registered schema; "
            f"known: {', '.join(schema_names())}") from None


def to_dict(obj) -> dict:
    """Encode a registered object, stamping schema name + version."""
    entry = entry_for(obj)
    payload = entry.encode(obj)
    payload[SCHEMA_KEY] = entry.name
    payload[VERSION_KEY] = entry.version
    return payload


def from_dict(payload: dict):
    """Rebuild the typed object a :func:`to_dict` payload describes."""
    if not isinstance(payload, dict):
        raise SchemaError(
            f"payload must be a dict, got {type(payload).__name__}")
    name = payload.get(SCHEMA_KEY)
    if name is None:
        raise SchemaError(f"payload carries no {SCHEMA_KEY!r} field")
    entry = _BY_NAME.get(name)
    if entry is None:
        raise SchemaError(
            f"unknown schema {name!r}; known: {', '.join(schema_names())}")
    version = payload.get(VERSION_KEY)
    if not isinstance(version, int):
        raise SchemaError(
            f"schema {name!r} payload carries no integer {VERSION_KEY!r}")
    if version > entry.version:
        raise SchemaError(
            f"schema {name!r} payload is version {version}, newer than "
            f"this code understands (<= {entry.version})")
    try:
        return entry.decode(payload)
    except SchemaError:
        raise
    except Exception as exc:
        # A malformed field value (bad enum name, wrong type, failed
        # dataclass validation) is a payload problem, not a crash: the
        # service maps SchemaError to a 400-style response.
        raise SchemaError(
            f"schema {name!r} payload failed to decode: "
            f"{type(exc).__name__}: {exc}") from exc


def _nan_equal(a, b) -> bool:
    """Structural equality that treats NaN as equal to NaN.

    Mirrors dataclass/container equality otherwise, so a NaN-bearing
    timing field does not fail the round-trip gate while genuinely
    lossy codecs still do.
    """
    if a is b:
        return True
    if isinstance(a, float) and isinstance(b, float):
        return a == b or (math.isnan(a) and math.isnan(b))
    if dataclasses.is_dataclass(a) and type(a) is type(b):
        return all(_nan_equal(getattr(a, f.name), getattr(b, f.name))
                   for f in dataclasses.fields(a) if f.compare)
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(map(_nan_equal, a, b))
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and \
            all(_nan_equal(value, b[key]) for key, value in a.items())
    return a == b


def check_round_trip(obj) -> dict:
    """Encode, decode, compare; returns the payload when faithful."""
    payload = to_dict(obj)
    rebuilt = from_dict(payload)
    if rebuilt != obj and not _nan_equal(rebuilt, obj):
        raise SchemaError(
            f"schema {entry_for(obj).name!r} does not round-trip: "
            f"{obj!r} != {rebuilt!r}")
    return payload


# --- helpers shared by the concrete encoders --------------------------------


def dataclass_schema(name: str, version: int, cls: type,
                     exclude: tuple[str, ...] = (),
                     **field_codecs) -> SchemaEntry:
    """Register a flat dataclass: fields map 1:1 to payload keys.

    ``field_codecs`` maps a field name to an ``(encode, decode)`` pair
    for fields that need a JSON-safe representation (enums, tuples,
    nested registered types); unlisted fields pass through unchanged.
    ``exclude`` names fields left out of the payload entirely (bulky
    derived data); they must carry a default and be excluded from the
    dataclass' equality so the round-trip contract holds.

    Decoding follows the versioning policy: a field missing from the
    payload falls back to the dataclass default when there is one
    (additive optional fields never invalidate older payloads); only
    fields without a default are required.
    """
    fields = [f for f in dataclasses.fields(cls)
              if f.name not in exclude]

    def encode(obj) -> dict:
        payload = {}
        for field in fields:
            value = getattr(obj, field.name)
            codec = field_codecs.get(field.name)
            payload[field.name] = codec[0](value) if codec else value
        return payload

    def decode(payload: dict):
        kwargs = {}
        for field in fields:
            if field.name not in payload:
                if field.default is not dataclasses.MISSING or \
                        field.default_factory is not dataclasses.MISSING:
                    continue  # optional: the constructor defaults it
                raise SchemaError(
                    f"schema {name!r} payload is missing field "
                    f"{field.name!r}")
            codec = field_codecs.get(field.name)
            value = payload[field.name]
            kwargs[field.name] = codec[1](value) if codec else value
        return cls(**kwargs)

    return register(name, version, cls, encode, decode)


def opt(codec):
    """Lift an (encode, decode) pair over ``None``."""
    enc, dec = codec
    return (lambda v: None if v is None else enc(v),
            lambda v: None if v is None else dec(v))


def seq(codec, container=tuple):
    """Lift an (encode, decode) pair over a sequence."""
    enc, dec = codec
    return (lambda vs: [enc(v) for v in vs],
            lambda vs: container(dec(v) for v in vs))


#: Codec for plain tuples of JSON scalars (tuple <-> list).
TUPLE = (list, tuple)

#: Codec for nested registered types.
NESTED = (to_dict, from_dict)


def _encode_float(value: float) -> float | str:
    # Timing fields can legitimately be +/-inf (e.g. hold WNS on a
    # purely combinational design); strict JSON has no Infinity
    # literal, so non-finite floats travel as strings.
    if isinstance(value, float) and not math.isfinite(value):
        return repr(value)  # 'inf' | '-inf' | 'nan'
    return value


def _decode_float(value) -> float:
    return float(value)


#: Codec for floats that may be non-finite (JSON-strict).
FLOAT = (_encode_float, _decode_float)
