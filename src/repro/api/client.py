"""Minimal stdlib client for the job service.

Speaks the :mod:`repro.api.service` JSON protocol over
``urllib.request`` — used by the test suite, the CI smoke script and
any script that wants typed results back from a remote service.  The
client itself does no computation: the only heavy work it triggers is
the one-time import of the :mod:`repro.api` package (for the schema
registry that decodes result payloads).

Back-pressure aware: when the service rejects a call with HTTP 429
(queue full), the client retries with bounded exponential backoff —
``backoff_s * 2**attempt`` capped at ``max_backoff_s``, at most
``retries`` retries — honoring the server's ``Retry-After`` hint as a
lower bound (still capped, so tests can keep backoff tight).

:meth:`ServiceClient.run` is the convenience loop: submit, poll until
terminal, decode the result payload back into the typed result object
via the schema registry.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

from repro.api import schemas
from repro.errors import ServiceError


class ServiceClient:
    """One service endpoint, e.g. ``ServiceClient("http://127.0.0.1:8731")``."""

    def __init__(self, base_url: str, timeout: float = 30.0,
                 retries: int = 5, backoff_s: float = 0.05,
                 max_backoff_s: float = 2.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff_s = backoff_s
        self.max_backoff_s = max_backoff_s

    # --- HTTP plumbing ------------------------------------------------------

    def _call(self, method: str, path: str, body: dict | None = None):
        for attempt in range(self.retries + 1):
            try:
                return self._call_once(method, path, body)
            except ServiceError as exc:
                if exc.status != 429 or attempt >= self.retries:
                    raise
                delay = min(self.max_backoff_s,
                            self.backoff_s * (2 ** attempt))
                if exc.retry_after is not None:
                    delay = min(self.max_backoff_s,
                                max(delay, float(exc.retry_after)))
                time.sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover

    def _call_once(self, method: str, path: str, body: dict | None):
        data = json.dumps(body).encode() if body is not None else None
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=data, method=method,
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            retry_after = None
            try:
                payload = json.loads(exc.read())
                message = payload["error"]["message"]
                retry_after = payload["error"].get("retry_after")
            except Exception:  # noqa: BLE001 — non-JSON error body
                message = str(exc)
            if retry_after is None:
                header = exc.headers.get("Retry-After") \
                    if exc.headers is not None else None
                try:
                    retry_after = float(header) if header else None
                except ValueError:
                    retry_after = None
            raise ServiceError(message, status=exc.code,
                               retry_after=retry_after) from None

    # --- protocol -----------------------------------------------------------

    def health(self) -> dict:
        return self._call("GET", "/v1/health")

    def metrics(self) -> dict:
        """The schema-stamped metrics snapshot (``GET /v1/metrics``)."""
        return self._call("GET", "/v1/metrics")

    def metrics_snapshot(self):
        """The typed :class:`~repro.obs.MetricsSnapshot` object."""
        return schemas.from_dict(self.metrics())

    def schema_names(self) -> list[str]:
        return self._call("GET", "/v1/schemas")["schemas"]

    def submit(self, kind: str, circuit: str, request=None,
               config: dict | None = None) -> str:
        """Submit a job; returns its id.

        ``request`` may be a typed request object (encoded via the
        schema registry) or an already encoded payload dict.
        ``config`` is sent whenever it is not ``None`` — an explicit
        empty dict means "the default FlowConfig", and that intent
        reaches the service rather than being silently dropped.
        """
        body: dict = {"kind": kind, "circuit": circuit}
        if request is not None:
            if not isinstance(request, dict):
                request = schemas.to_dict(request)
            body["request"] = request
        if config is not None:
            body["config"] = config
        return self._call("POST", "/v1/jobs", body)["job_id"]

    def status(self, job_id: str) -> dict:
        return self._call("GET", f"/v1/jobs/{job_id}")

    def jobs(self) -> list[dict]:
        return self._call("GET", "/v1/jobs")["jobs"]

    def cancel(self, job_id: str) -> dict:
        return self._call("POST", f"/v1/jobs/{job_id}/cancel", body={})

    def result_payload(self, job_id: str) -> dict:
        return self._call("GET", f"/v1/jobs/{job_id}/result")

    def result(self, job_id: str):
        """The typed result object (decoded via the schema registry)."""
        return schemas.from_dict(self.result_payload(job_id))

    def wait(self, job_id: str, timeout: float = 300.0,
             poll_s: float = 0.05) -> dict:
        """Poll until the job reaches a terminal state.

        A job that disappears mid-poll (the service's retention cap
        evicted it between submissions) raises a :class:`ServiceError`
        that says so, instead of surfacing as a bare 404.
        """
        deadline = time.monotonic() + timeout
        while True:
            try:
                status = self.status(job_id)
            except ServiceError as exc:
                if exc.status == 404:
                    raise ServiceError(
                        f"job {job_id} was evicted or is unknown — the "
                        f"service's retention cap may have dropped it "
                        f"mid-poll (raise `serve --retain`, or fetch "
                        f"results sooner)", status=404) from None
                raise
            if status["status"] not in ("queued", "running"):
                return status
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"timed out waiting for job {job_id} "
                    f"(last status: {status['status']})", status=409)
            time.sleep(poll_s)

    def run(self, kind: str, circuit: str, request=None,
            config: dict | None = None, timeout: float = 300.0,
            poll_s: float = 0.05):
        """Submit, wait, and return the typed result object."""
        job_id = self.submit(kind, circuit, request=request, config=config)
        status = self.wait(job_id, timeout=timeout, poll_s=poll_s)
        if status["status"] != "done":
            raise ServiceError(
                f"job {job_id} ended {status['status']}: "
                f"{status.get('error')}", status=409)
        return self.result(job_id)
