"""`repro.api` — the unified public surface of the repro system.

Three layers, one import::

    from repro.api import Workspace

    ws = Workspace()
    design = ws.design("c432")
    print(design.optimize(technique="improved_smt").leakage_nw)

* :class:`Workspace` / :class:`Design` — the facade.  A workspace
  caches every piece of expensive compiled state (the synthesized
  library, corner-derived libraries, netlists keyed by content hash,
  flow results, incremental timing sessions); a design exposes the
  capability surface as typed methods: ``analyze()``, ``optimize()``,
  ``signoff()``, ``montecarlo()``, ``sweep()``.
* :mod:`repro.api.schemas` — one serialization registry.  Every
  request and result type round-trips through
  ``to_dict()``/``from_dict()`` with a ``schema_version`` stamp; the
  legacy ``as_dict()`` payloads now come from the same registry.
* :mod:`repro.api.service` — the persistent job-service mode
  (``repro-smt serve``): submit/status/result/cancel over stdlib
  HTTP + JSON, backed by one warm workspace so repeated requests hit
  the caches instead of cold-starting.

The pre-facade entry points (``repro.experiments.run_table1`` and
friends, ``repro.core.compare.compare_techniques``) still work as
deprecation shims that delegate here.
"""

from repro.api import schemas
from repro.api.requests import (
    AnalyzeRequest,
    MonteCarloRequest,
    OptimizeRequest,
    PolicyRequest,
    SignoffRequest,
    StandbyRequest,
    SweepRequest,
)
from repro.api.results import (
    AnalyzeResult,
    MonteCarloResult,
    OptimizeResult,
    SignoffCornerRow,
    SignoffResult,
    SweepResult,
    SweepRow,
)
from repro.api.workspace import Design, Workspace, netlist_fingerprint
from repro.policy.optimize import PolicyResult
from repro.standby.engine import StandbyResult
from repro.api import registry as _registry  # noqa: F401  (registers the
#                                             legacy payload schemas)
from repro.api import studies
from repro.api.client import ServiceClient
from repro.api.resultstore import ResultStore
from repro.api.service import JobService, ServiceServer, serve
from repro.api.shards import ShardPool

__all__ = [
    "AnalyzeRequest",
    "AnalyzeResult",
    "Design",
    "JobService",
    "MonteCarloRequest",
    "MonteCarloResult",
    "OptimizeRequest",
    "OptimizeResult",
    "PolicyRequest",
    "PolicyResult",
    "ResultStore",
    "ServiceClient",
    "ShardPool",
    "ServiceServer",
    "SignoffCornerRow",
    "SignoffRequest",
    "SignoffResult",
    "StandbyRequest",
    "StandbyResult",
    "SweepRequest",
    "SweepResult",
    "SweepRow",
    "Workspace",
    "netlist_fingerprint",
    "schemas",
    "serve",
    "studies",
]
