"""Persistent job-service mode (``repro-smt serve``).

A :class:`JobService` wraps a submit/status/result/cancel queue around
the workspace facade, and :class:`ServiceServer` exposes it over plain
HTTP + JSON (stdlib ``http.server`` — no new runtime dependencies).
The execution tier comes in two flavors:

* **in-process** (default): worker threads over one warm
  :class:`~repro.api.Workspace`, so repeated jobs against the same
  design hit the compiled-state caches instead of cold-starting;
* **sharded** (``shards > 0``): a :class:`~repro.api.shards.ShardPool`
  of worker *processes*, routed by the design's SHA-256 netlist
  fingerprint — each shard keeps its own warm workspace, so
  same-design jobs stay cache-local while different designs run truly
  in parallel (no shared GIL).

Around either tier the service layers three traffic mechanisms:

* **request coalescing** — identical in-flight work (same job kind +
  frozen request payload + design fingerprint + config digest)
  collapses onto one computation; later duplicates become
  *subscribers* that resolve the moment the primary finishes
  (``service.coalesced`` counts them);
* a **persistent result store**
  (:class:`~repro.api.resultstore.ResultStore`) — finished payloads
  are written to disk keyed by the same content key, so a restarted
  service answers previously computed requests without recomputing
  (``service.result_store_hits`` counts them);
* **back-pressure** — with ``queue_limit`` set, submissions past the
  queued backlog are rejected with HTTP **429** and a ``Retry-After``
  hint instead of accepting unbounded work
  (:class:`~repro.api.client.ServiceClient` retries these with
  bounded exponential backoff).

Endpoints (all payloads JSON)::

    GET  /v1/health              -> {"status": "ok", "jobs": N,
                                     "queue_depth": N,
                                     "jobs_by_kind": {...},
                                     "cache_stats": {...}}
    GET  /v1/metrics             -> schema-stamped MetricsSnapshot
                                    (counters, gauges, histograms,
                                    cache stats tree)
    GET  /v1/schemas             -> {"schemas": [...]}
    POST /v1/jobs                -> {"job_id": "..."}   (submit)
    GET  /v1/jobs                -> {"jobs": [status...]}
    GET  /v1/jobs/<id>           -> job status
    GET  /v1/jobs/<id>/result    -> the typed result payload
    POST /v1/jobs/<id>/cancel    -> job status

A submission body names a job kind, a circuit, and optionally a typed
request payload plus flow-config overrides::

    {"kind": "signoff", "circuit": "c432",
     "request": {"schema": "signoff_request", "schema_version": 1,
                 "technique": "improved_smt",
                 "corners": ["tt_nom", "ss_1.08v_125c"]},
     "config": {"timing_margin": 0.12}}

Errors come back as ``{"error": {"message": ..., "status": ...}}``
with the matching HTTP status (400 malformed, 404 unknown job, 409
conflicting state, 429 queue full, 500 unexpected server error).
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import queue
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.api import schemas
from repro.api.requests import (
    AnalyzeRequest,
    MonteCarloRequest,
    OptimizeRequest,
    PolicyRequest,
    SignoffRequest,
    StandbyRequest,
    SweepRequest,
)
from repro.api.resultstore import ResultStore, work_key
from repro.api.shards import ShardPool, execute_kind
from repro.api.workspace import Workspace
from repro.config import FlowConfig
from repro.errors import ReproError, ServiceError
from repro.obs import (
    MetricsSnapshot,
    REGISTRY,
    get_logger,
    install_builtin_sources,
)
from repro.obs.spans import span

logger = get_logger("repro.api.service")

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: Job kind -> request dataclass.
JOB_KINDS = {
    "analyze": AnalyzeRequest,
    "optimize": OptimizeRequest,
    "signoff": SignoffRequest,
    "montecarlo": MonteCarloRequest,
    "standby": StandbyRequest,
    "policy": PolicyRequest,
    "sweep": SweepRequest,
}


@dataclasses.dataclass(frozen=True)
class JobStatus:
    """One job's externally visible state."""

    job_id: str
    kind: str
    circuit: str
    status: str
    error: str | None = None


schemas.dataclass_schema("job_status", 1, JobStatus)


class _Job:
    """Internal mutable job record (lock-protected by the service)."""

    def __init__(self, job_id: str, kind: str, circuit: str, request,
                 config: FlowConfig, fingerprint: str = "",
                 work_key: str = "", request_payload: dict | None = None,
                 config_payload: dict | None = None):
        self.job_id = job_id
        self.kind = kind
        self.circuit = circuit
        self.request = request
        self.config = config
        self.fingerprint = fingerprint
        self.work_key = work_key
        self.request_payload = request_payload
        self.config_payload = config_payload
        self.status = QUEUED
        self.result_payload: dict | None = None
        self.error: str | None = None
        #: Coalescing: job ids riding on this job's computation.
        self.subscribers: list[str] = []
        #: Set on subscriber jobs: the primary job id they ride on.
        self.coalesced_into: str | None = None

    def snapshot(self) -> JobStatus:
        return JobStatus(job_id=self.job_id, kind=self.kind,
                         circuit=self.circuit, status=self.status,
                         error=self.error)


def parse_submission(payload) -> tuple[str, str, object, FlowConfig]:
    """Validate a submit body -> (kind, circuit, request, config).

    Raises :class:`ServiceError` (400) on anything malformed; the
    message names what is wrong so clients can fix the body.
    """
    if not isinstance(payload, dict):
        raise ServiceError("submission body must be a JSON object")
    kind = payload.get("kind")
    if kind not in JOB_KINDS:
        raise ServiceError(
            f"unknown job kind {kind!r}; known: {sorted(JOB_KINDS)}")
    circuit = payload.get("circuit")
    if not isinstance(circuit, str) or not circuit:
        raise ServiceError("submission needs a non-empty 'circuit' name")
    from repro.benchcircuits.suite import available_circuits

    if circuit not in available_circuits():
        raise ServiceError(f"unknown circuit {circuit!r}")
    request_payload = payload.get("request")
    request_cls = JOB_KINDS[kind]
    if request_payload is None:
        # No payload -> the facade builds the default request, so
        # config-derived defaults (e.g. FlowConfig.standby_*) apply.
        request = None
    else:
        try:
            request = schemas.from_dict(request_payload)
        except ReproError as exc:
            raise ServiceError(f"bad request payload: {exc}") from exc
        if not isinstance(request, request_cls):
            raise ServiceError(
                f"request payload is a "
                f"{schemas.entry_for(request).name!r}, but job kind "
                f"{kind!r} needs a "
                f"{schemas.entry_for(request_cls).name!r}")
    overrides = payload.get("config") or {}
    if not isinstance(overrides, dict):
        raise ServiceError("'config' must be an object of FlowConfig "
                           "field overrides")
    try:
        config = FlowConfig(**overrides)
    except TypeError as exc:
        raise ServiceError(f"bad config override: {exc}") from exc
    except ReproError as exc:
        raise ServiceError(f"bad config override: {exc}") from exc
    return kind, circuit, request, config


class JobService:
    """A persistent job queue over the workspace facade.

    ``workers`` is the number of worker threads draining the queue.
    In the default in-process tier they execute on the shared warm
    workspace (per-design locks keep that race-free); with
    ``shards > 0`` each worker thread dispatches to the
    fingerprint-routed process pool and blocks on the result, so
    ``workers`` is raised to at least the shard count to keep every
    shard busy.
    """

    #: Default cap on retained *finished* job records (results
    #: included); the oldest finished jobs are evicted past it, so a
    #: long-lived service does not grow without bound.
    DEFAULT_RETAIN = 1000

    #: The Retry-After hint (seconds) sent with 429 rejections.
    RETRY_AFTER_S = 1

    def __init__(self, workspace: Workspace | None = None, jobs: int = 1,
                 workers: int = 1, retain: int | None = None,
                 shards: int = 0, queue_limit: int | None = None,
                 result_store: "ResultStore | str | None" = None):
        self.workspace = workspace or Workspace(jobs=jobs)
        self.retain = self.DEFAULT_RETAIN if retain is None \
            else max(1, int(retain))
        self.shards = max(0, int(shards))
        self.queue_limit = None if queue_limit is None \
            else max(1, int(queue_limit))
        if isinstance(result_store, (str, bytes)) or \
                hasattr(result_store, "__fspath__"):
            result_store = ResultStore(result_store)
        self._store: ResultStore | None = result_store
        self._pool: ShardPool | None = None
        if self.shards:
            self._pool = ShardPool(self.shards,
                                   library=self.workspace.peek_library(),
                                   jobs=jobs)
        self._jobs: dict[str, _Job] = {}
        self._order: list[str] = []
        self._queue: queue.Queue[str | None] = queue.Queue()
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        #: work_key -> primary job id, while that job is queued/running.
        self._inflight: dict[str, str] = {}
        #: Jobs enqueued and not yet picked up or cancelled (the
        #: back-pressure budget; coalesced subscribers are free).
        self._queued = 0
        workers = max(1, int(workers))
        if self.shards:
            workers = max(workers, self.shards)
        self._workers = [
            threading.Thread(target=self._work, daemon=True,
                             name=f"repro-api-worker-{index}")
            for index in range(workers)
        ]
        self._started = False
        self._closed = False
        # One coherent metrics surface: the library-wide cache sources
        # plus this service's workspace tree (re-registering on
        # restart replaces the previous workspace's source).
        install_builtin_sources()
        REGISTRY.register_source(
            "workspace", self.workspace.stats.tree)
        if self._store is not None:
            REGISTRY.register_source("result_store", self._store.stats)
        else:
            REGISTRY.unregister_source("result_store")
        REGISTRY.set_gauge("service.queue_depth", 0)

    # --- lifecycle ----------------------------------------------------------

    def start(self) -> "JobService":
        if not self._started:
            self._started = True
            for worker in self._workers:
                worker.start()
        return self

    def close(self):
        """Stop accepting work, resolve queued jobs, unblock workers.

        Jobs still queued when the service closes are marked
        ``cancelled`` (with an explanatory error) instead of being
        left ``queued`` forever for clients to poll.
        """
        with self._lock:
            self._closed = True
            for job in self._jobs.values():
                if job.status == QUEUED:
                    job.status = CANCELLED
                    job.error = "service closed before the job ran"
            self._queued = 0
            self._inflight.clear()
        self._set_queue_gauge()
        for _ in self._workers:
            self._queue.put(None)
        if self._pool is not None:
            self._pool.close()

    # --- the queue ----------------------------------------------------------

    def submit(self, payload: dict) -> JobStatus:
        kind, circuit, request, config = parse_submission(payload)
        # Fingerprint/encodings outside the lock: the first touch of a
        # circuit loads its netlist (workspace-locked separately).
        fingerprint = self.workspace.fingerprint(circuit)
        request_payload = None if request is None \
            else schemas.to_dict(request)
        config_payload = schemas.to_dict(config)
        key = work_key(kind, fingerprint, request_payload, config_payload)
        with self._lock:
            if self._closed:
                raise ServiceError("service is shutting down", status=409)
            job_id = f"job-{next(self._ids)}"
            job = _Job(job_id, kind, circuit, request, config,
                       fingerprint=fingerprint, work_key=key,
                       request_payload=request_payload,
                       config_payload=config_payload)
            primary_id = self._inflight.get(key)
            primary = self._jobs.get(primary_id) \
                if primary_id is not None else None
            if primary is not None and primary.status in (QUEUED, RUNNING):
                # Coalesce: identical in-flight work -> one
                # computation, N subscribers.
                job.coalesced_into = primary.job_id
                primary.subscribers.append(job_id)
                self._jobs[job_id] = job
                self._order.append(job_id)
                self._evict_finished()
                REGISTRY.inc("service.coalesced")
                return job.snapshot()
            if self.queue_limit is not None \
                    and self._queued >= self.queue_limit:
                REGISTRY.inc("service.rejected")
                raise ServiceError(
                    f"queue is full ({self._queued} jobs queued, "
                    f"limit {self.queue_limit}); retry later",
                    status=429, retry_after=self.RETRY_AFTER_S)
            self._jobs[job_id] = job
            self._order.append(job_id)
            self._inflight[key] = job_id
            self._queued += 1
            self._evict_finished()
        self._queue.put(job_id)
        self._set_queue_gauge()
        return job.snapshot()

    def _evict_finished(self):
        """Drop the oldest finished jobs past the retention cap.

        Called with the lock held.  Queued/running jobs are never
        evicted, so the cap bounds memory without losing live work.
        ``_order`` is rebuilt once per eviction pass (not
        ``.remove()``d per job, which made eviction O(n^2)).
        """
        terminal = (DONE, FAILED, CANCELLED)
        finished = [job_id for job_id in self._order
                    if self._jobs[job_id].status in terminal]
        excess = len(finished) - self.retain
        if excess <= 0:
            return
        doomed = set(finished[:excess])
        for job_id in doomed:
            del self._jobs[job_id]
        self._order = [job_id for job_id in self._order
                       if job_id not in doomed]

    def _get(self, job_id: str) -> _Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job {job_id!r}", status=404)
        return job

    def status(self, job_id: str) -> JobStatus:
        with self._lock:
            return self._get(job_id).snapshot()

    def jobs(self) -> list[JobStatus]:
        with self._lock:
            return [self._jobs[job_id].snapshot()
                    for job_id in self._order]

    def queue_depth(self) -> int:
        """Jobs enqueued but not yet picked up by a worker
        (coalesced subscribers ride a primary and do not count)."""
        with self._lock:
            return self._queued

    def _set_queue_gauge(self):
        REGISTRY.set_gauge("service.queue_depth", self.queue_depth())

    def jobs_by_kind(self) -> dict[str, int]:
        """Retained job counts per kind (any lifecycle state)."""
        with self._lock:
            counts: dict[str, int] = {}
            for job in self._jobs.values():
                counts[job.kind] = counts.get(job.kind, 0) + 1
            return counts

    def metrics_snapshot(self) -> MetricsSnapshot:
        """The ``/v1/metrics`` payload: registry + live queue gauge."""
        self._set_queue_gauge()
        return MetricsSnapshot.from_registry(REGISTRY)

    def cache_stats(self) -> dict:
        """The ``/v1/health`` cache view: workspace + result store."""
        stats = self.workspace.cache_stats()
        if self._store is not None:
            stats["result_store"] = self._store.stats()
        return stats

    def result(self, job_id: str) -> dict:
        with self._lock:
            job = self._get(job_id)
            if job.status in (QUEUED, RUNNING):
                raise ServiceError(
                    f"job {job_id} is still {job.status}", status=409)
            if job.status == CANCELLED:
                raise ServiceError(f"job {job_id} was cancelled",
                                   status=409)
            if job.status == FAILED:
                raise ServiceError(
                    f"job {job_id} failed: {job.error}", status=409)
            return dict(job.result_payload)

    def cancel(self, job_id: str) -> JobStatus:
        """Cancel a queued job; running/finished jobs are a conflict."""
        with self._lock:
            job = self._get(job_id)
            if job.status != QUEUED:
                raise ServiceError(
                    f"job {job_id} is {job.status}; only queued jobs "
                    f"can be cancelled", status=409)
            job.status = CANCELLED
            if job.coalesced_into is not None:
                primary = self._jobs.get(job.coalesced_into)
                if primary is not None \
                        and job_id in primary.subscribers:
                    primary.subscribers.remove(job_id)
            else:
                self._queued -= 1
                self._promote_subscriber_locked(job)
            snapshot = job.snapshot()
        self._set_queue_gauge()
        return snapshot

    def _promote_subscriber_locked(self, job: _Job):
        """A queued primary was cancelled: its oldest live subscriber
        becomes the new primary and is enqueued in its place."""
        if self._inflight.get(job.work_key) == job.job_id:
            del self._inflight[job.work_key]
        live = [sub_id for sub_id in job.subscribers
                if sub_id in self._jobs
                and self._jobs[sub_id].status == QUEUED]
        job.subscribers = []
        if not live:
            return
        primary = self._jobs[live[0]]
        primary.coalesced_into = None
        primary.subscribers = live[1:]
        for sub_id in live[1:]:
            self._jobs[sub_id].coalesced_into = primary.job_id
        self._inflight[job.work_key] = primary.job_id
        self._queued += 1
        self._queue.put(primary.job_id)

    # --- execution ----------------------------------------------------------

    def _work(self):
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            with self._lock:
                job = self._jobs.get(job_id)
                if job is None or job.status != QUEUED:
                    # Cancelled (or shutdown-cancelled) while queued;
                    # its queue slot was released by cancel()/close().
                    continue
                job.status = RUNNING
                self._queued -= 1
            self._set_queue_gauge()
            logger.info("job %s start: %s %s", job.job_id, job.kind,
                        job.circuit)
            started = time.perf_counter()
            try:
                payload = self._store.load(job.work_key) \
                    if self._store is not None else None
                if payload is not None:
                    REGISTRY.inc("service.result_store_hits")
                else:
                    with span("service.job", kind=job.kind,
                              circuit=job.circuit, job_id=job.job_id,
                              shard=(self._pool.shard_for(job.fingerprint)
                                     if self._pool is not None else -1)):
                        if self._pool is not None:
                            shard = self._pool.shard_for(job.fingerprint)
                            REGISTRY.inc(f"service.shard.{shard}.jobs")
                            payload = self._pool.run(
                                job.kind, job.circuit, job.fingerprint,
                                job.request_payload, job.config_payload)
                        else:
                            result = self._execute(job)
                            payload = schemas.check_round_trip(result)
                    if self._store is not None:
                        self._store.store(job.work_key, payload)
                with self._lock:
                    job.result_payload = payload
                    job.status = DONE
                    self._finish_locked(job)
            except Exception as exc:  # noqa: BLE001 — jobs never kill
                #                       the worker; errors land on the job
                with self._lock:
                    job.error = f"{type(exc).__name__}: {exc}"
                    job.status = FAILED
                    self._finish_locked(job)
                REGISTRY.inc("service.jobs_failed")
                logger.warning("job %s failed: %s", job.job_id, job.error)
            elapsed = time.perf_counter() - started
            REGISTRY.inc(f"service.jobs.{job.kind}")
            REGISTRY.observe("service.job_latency_s", elapsed)
            logger.info("job %s %s in %.3fs", job.job_id, job.status,
                        elapsed)

    def _finish_locked(self, job: _Job):
        """Resolve a finished primary: release the in-flight slot and
        propagate the outcome to every coalesced subscriber."""
        if self._inflight.get(job.work_key) == job.job_id:
            del self._inflight[job.work_key]
        for sub_id in job.subscribers:
            sub = self._jobs.get(sub_id)
            if sub is None or sub.status != QUEUED:
                continue
            if job.status == DONE:
                sub.result_payload = dict(job.result_payload)
                sub.status = DONE
            else:
                sub.error = job.error
                sub.status = FAILED
        job.subscribers = []

    def _execute(self, job: _Job):
        design = self.workspace.design(job.circuit, job.config)
        return execute_kind(design, job.kind, job.request)


def _error_payload(error: ServiceError) -> dict:
    payload = {"error": {"message": str(error), "status": error.status}}
    if error.retry_after is not None:
        payload["error"]["retry_after"] = error.retry_after
    return payload


class _Handler(BaseHTTPRequestHandler):
    """Routes the /v1 endpoints onto the owning :class:`JobService`."""

    server: "ServiceServer"
    protocol_version = "HTTP/1.1"

    # --- plumbing -----------------------------------------------------------

    def log_message(self, fmt, *args):  # quiet by default
        if self.server.verbose:
            super().log_message(fmt, *args)

    def _send(self, status: int, payload: dict,
              headers: dict | None = None):
        # allow_nan=False keeps the wire strict JSON: non-finite floats
        # must have been string-encoded by the schema layer.  The body
        # is built before the status line goes out, so an encoding
        # failure here can still be answered with a clean 500.
        body = json.dumps(payload, sort_keys=True,
                          allow_nan=False).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, str(value))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self):
        if not self._body:
            raise ServiceError("request body must be JSON")
        try:
            return json.loads(self._body)
        except json.JSONDecodeError as exc:
            raise ServiceError(f"request body is not valid JSON: "
                               f"{exc}") from exc

    def _dispatch(self, method: str):
        # Always drain the body up front: a route that ignores it
        # (e.g. cancel) must not leave bytes on a keep-alive
        # connection, where they would corrupt the next request.
        length = int(self.headers.get("Content-Length") or 0)
        self._body = self.rfile.read(length) if length else b""
        service = self.server.service
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        try:
            if parts[:1] != ["v1"]:
                raise ServiceError(f"unknown path {self.path!r}",
                                   status=404)
            rest = parts[1:]
            if method == "GET" and rest == ["health"]:
                self._send(200, {
                    "status": "ok",
                    "jobs": len(service.jobs()),
                    "queue_depth": service.queue_depth(),
                    "jobs_by_kind": service.jobs_by_kind(),
                    "cache_stats": service.cache_stats(),
                })
            elif method == "GET" and rest == ["metrics"]:
                self._send(200, schemas.check_round_trip(
                    service.metrics_snapshot()))
            elif method == "GET" and rest == ["schemas"]:
                self._send(200, {"schemas": list(schemas.schema_names())})
            elif method == "POST" and rest == ["jobs"]:
                status = service.submit(self._read_json())
                self._send(202, schemas.to_dict(status))
            elif method == "GET" and rest == ["jobs"]:
                self._send(200, {"jobs": [schemas.to_dict(s)
                                          for s in service.jobs()]})
            elif method == "GET" and len(rest) == 2 and rest[0] == "jobs":
                self._send(200, schemas.to_dict(service.status(rest[1])))
            elif method == "GET" and len(rest) == 3 \
                    and rest[0] == "jobs" and rest[2] == "result":
                self._send(200, service.result(rest[1]))
            elif method == "POST" and len(rest) == 3 \
                    and rest[0] == "jobs" and rest[2] == "cancel":
                self._send(200, schemas.to_dict(service.cancel(rest[1])))
            else:
                raise ServiceError(f"unknown path {self.path!r}",
                                   status=404)
        except ServiceError as error:
            headers = {}
            if error.retry_after is not None:
                headers["Retry-After"] = error.retry_after
            self._send(error.status, _error_payload(error),
                       headers=headers)
        except Exception as exc:  # noqa: BLE001 — anything else must
            #                       still answer with a JSON 500, not a
            #                       silently dropped connection
            logger.exception("unhandled error serving %s %s",
                             method, self.path)
            try:
                self._send(500, {"error": {
                    "message": f"internal server error: "
                               f"{type(exc).__name__}: {exc}",
                    "status": 500}})
            except Exception:  # the socket itself is gone
                pass

    def do_GET(self):
        self._dispatch("GET")

    def do_POST(self):
        self._dispatch("POST")


class ServiceServer(ThreadingHTTPServer):
    """The HTTP front of a :class:`JobService`."""

    daemon_threads = True
    #: Listen backlog.  The stdlib default (5) resets connections the
    #: moment a few dozen clients connect at once; the service's
    #: back-pressure must come from the 429 queue limit, not from the
    #: kernel dropping SYNs.
    request_queue_size = 128

    def __init__(self, service: JobService, host: str = "127.0.0.1",
                 port: int = 0, verbose: bool = False):
        self.service = service
        self.verbose = verbose
        super().__init__((host, port), _Handler)

    @property
    def address(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def serve(host: str = "127.0.0.1", port: int = 0, jobs: int = 1,
          workers: int = 1, workspace: Workspace | None = None,
          retain: int | None = None, shards: int = 0,
          queue_limit: int | None = None,
          result_store: "ResultStore | str | None" = None,
          verbose: bool = False) -> ServiceServer:
    """Build and start a service (worker threads + HTTP listener).

    Returns the running server; call ``serve_forever()`` to block, or
    use it programmatically (tests drive it from a background thread).
    """
    service = JobService(workspace=workspace, jobs=jobs,
                         workers=workers, retain=retain, shards=shards,
                         queue_limit=queue_limit,
                         result_store=result_store).start()
    return ServiceServer(service, host=host, port=port, verbose=verbose)
