"""Persistent job-service mode (``repro-smt serve``).

A :class:`JobService` wraps one long-lived
:class:`~repro.api.Workspace` behind a submit/status/result/cancel
queue, and :class:`ServiceServer` exposes it over plain HTTP + JSON
(stdlib ``http.server`` — no new runtime dependencies).  Because the
workspace persists across requests, repeated jobs against the same
design hit the compiled-state caches (library, netlists, flow results,
timing sessions) instead of cold-starting — the whole point of serving
the facade instead of forking the CLI per request.

Endpoints (all payloads JSON)::

    GET  /v1/health              -> {"status": "ok", "jobs": N,
                                     "queue_depth": N,
                                     "jobs_by_kind": {...},
                                     "cache_stats": {...}}
    GET  /v1/metrics             -> schema-stamped MetricsSnapshot
                                    (counters, gauges, histograms,
                                    cache stats tree)
    GET  /v1/schemas             -> {"schemas": [...]}
    POST /v1/jobs                -> {"job_id": "..."}   (submit)
    GET  /v1/jobs                -> {"jobs": [status...]}
    GET  /v1/jobs/<id>           -> job status
    GET  /v1/jobs/<id>/result    -> the typed result payload
    POST /v1/jobs/<id>/cancel    -> job status

A submission body names a job kind, a circuit, and optionally a typed
request payload plus flow-config overrides::

    {"kind": "signoff", "circuit": "c432",
     "request": {"schema": "signoff_request", "schema_version": 1,
                 "technique": "improved_smt",
                 "corners": ["tt_nom", "ss_1.08v_125c"]},
     "config": {"timing_margin": 0.12}}

Errors come back as ``{"error": {"message": ..., "status": ...}}``
with the matching HTTP status (400 malformed, 404 unknown job, 409
conflicting state).  Grid fan-out inside a job (Monte-Carlo chunking,
sweep grids) rides the existing
:class:`~repro.runner.ExperimentRunner` process pool via the
workspace's ``jobs`` knob.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import queue
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.api import schemas
from repro.api.requests import (
    AnalyzeRequest,
    MonteCarloRequest,
    OptimizeRequest,
    SignoffRequest,
    StandbyRequest,
    SweepRequest,
)
from repro.api.workspace import Workspace
from repro.config import FlowConfig
from repro.errors import ReproError, ServiceError
from repro.obs import (
    MetricsSnapshot,
    REGISTRY,
    get_logger,
    install_builtin_sources,
)
from repro.obs.spans import span

logger = get_logger("repro.api.service")

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: Job kind -> request dataclass.
JOB_KINDS = {
    "analyze": AnalyzeRequest,
    "optimize": OptimizeRequest,
    "signoff": SignoffRequest,
    "montecarlo": MonteCarloRequest,
    "standby": StandbyRequest,
    "sweep": SweepRequest,
}


@dataclasses.dataclass(frozen=True)
class JobStatus:
    """One job's externally visible state."""

    job_id: str
    kind: str
    circuit: str
    status: str
    error: str | None = None


schemas.dataclass_schema("job_status", 1, JobStatus)


class _Job:
    """Internal mutable job record (lock-protected by the service)."""

    def __init__(self, job_id: str, kind: str, circuit: str, request,
                 config: FlowConfig):
        self.job_id = job_id
        self.kind = kind
        self.circuit = circuit
        self.request = request
        self.config = config
        self.status = QUEUED
        self.result_payload: dict | None = None
        self.error: str | None = None

    def snapshot(self) -> JobStatus:
        return JobStatus(job_id=self.job_id, kind=self.kind,
                         circuit=self.circuit, status=self.status,
                         error=self.error)


def parse_submission(payload) -> tuple[str, str, object, FlowConfig]:
    """Validate a submit body -> (kind, circuit, request, config).

    Raises :class:`ServiceError` (400) on anything malformed; the
    message names what is wrong so clients can fix the body.
    """
    if not isinstance(payload, dict):
        raise ServiceError("submission body must be a JSON object")
    kind = payload.get("kind")
    if kind not in JOB_KINDS:
        raise ServiceError(
            f"unknown job kind {kind!r}; known: {sorted(JOB_KINDS)}")
    circuit = payload.get("circuit")
    if not isinstance(circuit, str) or not circuit:
        raise ServiceError("submission needs a non-empty 'circuit' name")
    from repro.benchcircuits.suite import available_circuits

    if circuit not in available_circuits():
        raise ServiceError(f"unknown circuit {circuit!r}")
    request_payload = payload.get("request")
    request_cls = JOB_KINDS[kind]
    if request_payload is None:
        # No payload -> the facade builds the default request, so
        # config-derived defaults (e.g. FlowConfig.standby_*) apply.
        request = None
    else:
        try:
            request = schemas.from_dict(request_payload)
        except ReproError as exc:
            raise ServiceError(f"bad request payload: {exc}") from exc
        if not isinstance(request, request_cls):
            raise ServiceError(
                f"request payload is a "
                f"{schemas.entry_for(request).name!r}, but job kind "
                f"{kind!r} needs a "
                f"{schemas.entry_for(request_cls).name!r}")
    overrides = payload.get("config") or {}
    if not isinstance(overrides, dict):
        raise ServiceError("'config' must be an object of FlowConfig "
                           "field overrides")
    try:
        config = FlowConfig(**overrides)
    except TypeError as exc:
        raise ServiceError(f"bad config override: {exc}") from exc
    except ReproError as exc:
        raise ServiceError(f"bad config override: {exc}") from exc
    return kind, circuit, request, config


class JobService:
    """A persistent job queue over one warm :class:`Workspace`.

    ``workers`` is the number of in-process worker threads draining
    the queue (jobs on the same workspace share its caches; the
    CPU-heavy grid fan-out inside a job uses the process pool, so one
    worker thread is usually right).
    """

    #: Default cap on retained *finished* job records (results
    #: included); the oldest finished jobs are evicted past it, so a
    #: long-lived service does not grow without bound.
    DEFAULT_RETAIN = 1000

    def __init__(self, workspace: Workspace | None = None, jobs: int = 1,
                 workers: int = 1, retain: int | None = None):
        self.workspace = workspace or Workspace(jobs=jobs)
        self.retain = self.DEFAULT_RETAIN if retain is None \
            else max(1, int(retain))
        self._jobs: dict[str, _Job] = {}
        self._order: list[str] = []
        self._queue: queue.Queue[str | None] = queue.Queue()
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._workers = [
            threading.Thread(target=self._work, daemon=True,
                             name=f"repro-api-worker-{index}")
            for index in range(max(1, int(workers)))
        ]
        self._started = False
        self._closed = False
        # One coherent metrics surface: the library-wide cache sources
        # plus this service's workspace tree (re-registering on
        # restart replaces the previous workspace's source).
        install_builtin_sources()
        REGISTRY.register_source(
            "workspace", self.workspace.stats.tree)
        REGISTRY.set_gauge("service.queue_depth", 0)

    # --- lifecycle ----------------------------------------------------------

    def start(self) -> "JobService":
        if not self._started:
            self._started = True
            for worker in self._workers:
                worker.start()
        return self

    def close(self):
        """Stop accepting work and unblock the worker threads."""
        self._closed = True
        for _ in self._workers:
            self._queue.put(None)

    # --- the queue ----------------------------------------------------------

    def submit(self, payload: dict) -> JobStatus:
        if self._closed:
            raise ServiceError("service is shutting down", status=409)
        kind, circuit, request, config = parse_submission(payload)
        with self._lock:
            job_id = f"job-{next(self._ids)}"
            job = _Job(job_id, kind, circuit, request, config)
            self._jobs[job_id] = job
            self._order.append(job_id)
            self._evict_finished()
        self._queue.put(job_id)
        return job.snapshot()

    def _evict_finished(self):
        """Drop the oldest finished jobs past the retention cap.

        Called with the lock held.  Queued/running jobs are never
        evicted, so the cap bounds memory without losing live work.
        """
        terminal = (DONE, FAILED, CANCELLED)
        finished = [job_id for job_id in self._order
                    if self._jobs[job_id].status in terminal]
        for job_id in finished[:max(0, len(finished) - self.retain)]:
            del self._jobs[job_id]
            self._order.remove(job_id)

    def _get(self, job_id: str) -> _Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job {job_id!r}", status=404)
        return job

    def status(self, job_id: str) -> JobStatus:
        with self._lock:
            return self._get(job_id).snapshot()

    def jobs(self) -> list[JobStatus]:
        with self._lock:
            return [self._jobs[job_id].snapshot()
                    for job_id in self._order]

    def queue_depth(self) -> int:
        """Jobs submitted but not yet picked up by a worker."""
        with self._lock:
            return sum(1 for job in self._jobs.values()
                       if job.status == QUEUED)

    def jobs_by_kind(self) -> dict[str, int]:
        """Retained job counts per kind (any lifecycle state)."""
        with self._lock:
            counts: dict[str, int] = {}
            for job in self._jobs.values():
                counts[job.kind] = counts.get(job.kind, 0) + 1
            return counts

    def metrics_snapshot(self) -> MetricsSnapshot:
        """The ``/v1/metrics`` payload: registry + live queue gauge."""
        REGISTRY.set_gauge("service.queue_depth", self.queue_depth())
        return MetricsSnapshot.from_registry(REGISTRY)

    def result(self, job_id: str) -> dict:
        with self._lock:
            job = self._get(job_id)
            if job.status in (QUEUED, RUNNING):
                raise ServiceError(
                    f"job {job_id} is still {job.status}", status=409)
            if job.status == CANCELLED:
                raise ServiceError(f"job {job_id} was cancelled",
                                   status=409)
            if job.status == FAILED:
                raise ServiceError(
                    f"job {job_id} failed: {job.error}", status=409)
            return dict(job.result_payload)

    def cancel(self, job_id: str) -> JobStatus:
        """Cancel a queued job; running/finished jobs are a conflict."""
        with self._lock:
            job = self._get(job_id)
            if job.status == QUEUED:
                job.status = CANCELLED
                return job.snapshot()
            raise ServiceError(
                f"job {job_id} is {job.status}; only queued jobs can be "
                f"cancelled", status=409)

    # --- execution ----------------------------------------------------------

    def _work(self):
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            with self._lock:
                job = self._jobs[job_id]
                if job.status != QUEUED:
                    continue  # cancelled while queued
                job.status = RUNNING
            REGISTRY.set_gauge("service.queue_depth", self.queue_depth())
            logger.info("job %s start: %s %s", job.job_id, job.kind,
                        job.circuit)
            started = time.perf_counter()
            try:
                with span("service.job", kind=job.kind,
                          circuit=job.circuit, job_id=job.job_id):
                    result = self._execute(job)
                payload = schemas.check_round_trip(result)
                with self._lock:
                    job.result_payload = payload
                    job.status = DONE
            except Exception as exc:  # noqa: BLE001 — jobs never kill
                #                       the worker; errors land on the job
                with self._lock:
                    job.error = f"{type(exc).__name__}: {exc}"
                    job.status = FAILED
                REGISTRY.inc("service.jobs_failed")
                logger.warning("job %s failed: %s", job.job_id, job.error)
            elapsed = time.perf_counter() - started
            REGISTRY.inc(f"service.jobs.{job.kind}")
            REGISTRY.observe("service.job_latency_s", elapsed)
            logger.info("job %s %s in %.3fs", job.job_id, job.status,
                        elapsed)

    def _execute(self, job: _Job):
        design = self.workspace.design(job.circuit, job.config)
        if job.kind == "analyze":
            return design.analyze(job.request)
        if job.kind == "optimize":
            return design.optimize(job.request)
        if job.kind == "signoff":
            return design.signoff(job.request)
        if job.kind == "montecarlo":
            return design.montecarlo(job.request)
        if job.kind == "standby":
            return design.standby(job.request)
        if job.kind == "sweep":
            return design.sweep(job.request)
        raise ServiceError(f"unhandled job kind {job.kind!r}")


def _error_payload(error: ServiceError) -> dict:
    return {"error": {"message": str(error), "status": error.status}}


class _Handler(BaseHTTPRequestHandler):
    """Routes the /v1 endpoints onto the owning :class:`JobService`."""

    server: "ServiceServer"
    protocol_version = "HTTP/1.1"

    # --- plumbing -----------------------------------------------------------

    def log_message(self, fmt, *args):  # quiet by default
        if self.server.verbose:
            super().log_message(fmt, *args)

    def _send(self, status: int, payload: dict):
        # allow_nan=False keeps the wire strict JSON: non-finite floats
        # must have been string-encoded by the schema layer.
        body = json.dumps(payload, sort_keys=True,
                          allow_nan=False).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self):
        if not self._body:
            raise ServiceError("request body must be JSON")
        try:
            return json.loads(self._body)
        except json.JSONDecodeError as exc:
            raise ServiceError(f"request body is not valid JSON: "
                               f"{exc}") from exc

    def _dispatch(self, method: str):
        # Always drain the body up front: a route that ignores it
        # (e.g. cancel) must not leave bytes on a keep-alive
        # connection, where they would corrupt the next request.
        length = int(self.headers.get("Content-Length") or 0)
        self._body = self.rfile.read(length) if length else b""
        service = self.server.service
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        try:
            if parts[:1] != ["v1"]:
                raise ServiceError(f"unknown path {self.path!r}",
                                   status=404)
            rest = parts[1:]
            if method == "GET" and rest == ["health"]:
                self._send(200, {
                    "status": "ok",
                    "jobs": len(service.jobs()),
                    "queue_depth": service.queue_depth(),
                    "jobs_by_kind": service.jobs_by_kind(),
                    "cache_stats": service.workspace.cache_stats(),
                })
            elif method == "GET" and rest == ["metrics"]:
                self._send(200, schemas.check_round_trip(
                    service.metrics_snapshot()))
            elif method == "GET" and rest == ["schemas"]:
                self._send(200, {"schemas": list(schemas.schema_names())})
            elif method == "POST" and rest == ["jobs"]:
                status = service.submit(self._read_json())
                self._send(202, schemas.to_dict(status))
            elif method == "GET" and rest == ["jobs"]:
                self._send(200, {"jobs": [schemas.to_dict(s)
                                          for s in service.jobs()]})
            elif method == "GET" and len(rest) == 2 and rest[0] == "jobs":
                self._send(200, schemas.to_dict(service.status(rest[1])))
            elif method == "GET" and len(rest) == 3 \
                    and rest[0] == "jobs" and rest[2] == "result":
                self._send(200, service.result(rest[1]))
            elif method == "POST" and len(rest) == 3 \
                    and rest[0] == "jobs" and rest[2] == "cancel":
                self._send(200, schemas.to_dict(service.cancel(rest[1])))
            else:
                raise ServiceError(f"unknown path {self.path!r}",
                                   status=404)
        except ServiceError as error:
            self._send(error.status, _error_payload(error))

    def do_GET(self):
        self._dispatch("GET")

    def do_POST(self):
        self._dispatch("POST")


class ServiceServer(ThreadingHTTPServer):
    """The HTTP front of a :class:`JobService`."""

    daemon_threads = True

    def __init__(self, service: JobService, host: str = "127.0.0.1",
                 port: int = 0, verbose: bool = False):
        self.service = service
        self.verbose = verbose
        super().__init__((host, port), _Handler)

    @property
    def address(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def serve(host: str = "127.0.0.1", port: int = 0, jobs: int = 1,
          workers: int = 1, workspace: Workspace | None = None,
          retain: int | None = None,
          verbose: bool = False) -> ServiceServer:
    """Build and start a service (worker threads + HTTP listener).

    Returns the running server; call ``serve_forever()`` to block, or
    use it programmatically (tests drive it from a background thread).
    """
    service = JobService(workspace=workspace, jobs=jobs,
                         workers=workers, retain=retain).start()
    return ServiceServer(service, host=host, port=port, verbose=verbose)
