"""Rectilinear spanning trees over net pins.

A rectilinear minimum spanning tree (Prim's algorithm under the L1
metric) stands in for the router's Steiner topology; its length is at
most 1.5x the optimal Steiner tree, which is accurate enough for
parasitic estimation and documented as such in DESIGN.md.
"""

from __future__ import annotations

import dataclasses
import math


@dataclasses.dataclass
class SteinerTree:
    """Tree over named points: edges reference point indices."""

    names: list[str]
    points: list[tuple[float, float]]
    edges: list[tuple[int, int]]   # (parent index, child index)

    @property
    def total_length(self) -> float:
        return sum(_manhattan(self.points[a], self.points[b])
                   for a, b in self.edges)

    def edge_lengths(self) -> list[float]:
        return [_manhattan(self.points[a], self.points[b])
                for a, b in self.edges]


def _manhattan(a: tuple[float, float], b: tuple[float, float]) -> float:
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


def build_mst(names: list[str],
              points: list[tuple[float, float]],
              root_index: int = 0) -> SteinerTree:
    """Prim MST rooted at ``root_index`` (edges directed root->leaf)."""
    count = len(points)
    if count == 0:
        return SteinerTree([], [], [])
    if count != len(names):
        raise ValueError("names and points must have equal length")
    in_tree = [False] * count
    best_dist = [math.inf] * count
    best_parent = [-1] * count
    in_tree[root_index] = True
    for i in range(count):
        if i != root_index:
            best_dist[i] = _manhattan(points[root_index], points[i])
            best_parent[i] = root_index
    edges: list[tuple[int, int]] = []
    for _ in range(count - 1):
        # Select the nearest out-of-tree point.
        candidate = -1
        candidate_dist = math.inf
        for i in range(count):
            if not in_tree[i] and best_dist[i] < candidate_dist:
                candidate = i
                candidate_dist = best_dist[i]
        if candidate < 0:
            break
        in_tree[candidate] = True
        edges.append((best_parent[candidate], candidate))
        for i in range(count):
            if not in_tree[i]:
                d = _manhattan(points[candidate], points[i])
                if d < best_dist[i]:
                    best_dist[i] = d
                    best_parent[i] = candidate
    return SteinerTree(list(names), list(points), edges)
