"""Elmore delay on RC trees.

The Elmore delay to node *n* is ``sum over edges e on the root->n path
of R_e * C_downstream(e)``.  :class:`RcTree` computes every node's
delay in two linear passes (post-order downstream capacitance,
pre-order delay accumulation).
"""

from __future__ import annotations

from repro.errors import RoutingError


class RcTree:
    """A rooted RC tree: node capacitances, edge resistances."""

    def __init__(self, root: str):
        self.root = root
        self.caps: dict[str, float] = {root: 0.0}
        self.parent: dict[str, tuple[str, float]] = {}
        self.children: dict[str, list[str]] = {root: []}

    def add_node(self, name: str, cap_pf: float, parent: str,
                 res_kohm: float):
        """Attach a node below ``parent`` through ``res_kohm``."""
        if name in self.caps:
            raise RoutingError(f"duplicate RC node {name!r}")
        if parent not in self.caps:
            raise RoutingError(f"unknown parent node {parent!r}")
        self.caps[name] = cap_pf
        self.parent[name] = (parent, res_kohm)
        self.children.setdefault(parent, []).append(name)
        self.children.setdefault(name, [])

    def add_cap(self, name: str, cap_pf: float):
        """Add extra capacitance (pin load) onto an existing node."""
        if name not in self.caps:
            raise RoutingError(f"unknown RC node {name!r}")
        self.caps[name] += cap_pf

    def total_cap(self) -> float:
        return sum(self.caps.values())

    def elmore_delays(self) -> dict[str, float]:
        """Elmore delay (ns) from the root to every node."""
        # Post-order: downstream capacitance per node.
        order: list[str] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            order.append(node)
            stack.extend(self.children.get(node, ()))
        downstream = dict(self.caps)
        for node in reversed(order):
            if node == self.root:
                continue
            parent, _res = self.parent[node]
            downstream[parent] += downstream[node]
        # Pre-order: accumulate delay along root->node paths.
        delays = {self.root: 0.0}
        for node in order:
            if node == self.root:
                continue
            parent, res = self.parent[node]
            delays[node] = delays[parent] + res * downstream[node]
        return delays
