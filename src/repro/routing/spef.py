"""SPEF-subset writer and reader.

The paper's flow re-optimizes the switch structure "based on post-route
information (SPEF)"; we honour the interface by serializing extracted
parasitics to a SPEF-style exchange format and reading them back::

    *SPEF "IEEE 1481-1998"
    *DESIGN c880
    *T_UNIT 1 NS
    *C_UNIT 1 PF
    *R_UNIT 1 KOHM

    *D_NET n42 0.00234
    *CONN
    *I g_10/Z O
    *I g_55/A I
    *RES
    1 g_10/Z g_55/A 0.104
    *DELAY
    1 g_55/A 0.00021
    *END

(The *DELAY section is our extension carrying precomputed Elmore sink
delays, so a reader does not need the full RC network to use the data.)
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.routing.extract import NetParasitics


def write_spef(parasitics: dict[str, NetParasitics],
               design_name: str = "design") -> str:
    """Serialize parasitics to SPEF text."""
    lines = [
        '*SPEF "IEEE 1481-1998"',
        f"*DESIGN {design_name}",
        "*T_UNIT 1 NS",
        "*C_UNIT 1 PF",
        "*R_UNIT 1 KOHM",
        "",
    ]
    for name in sorted(parasitics):
        net = parasitics[name]
        lines.append(f"*D_NET {name} {net.total_cap_pf:.6g}")
        lines.append("*PARAM")
        lines.append(f"*LEN {net.length_um:.6g}")
        lines.append(f"*RTOT {net.total_res_kohm:.6g}")
        if net.sink_delays:
            lines.append("*DELAY")
            for index, (sink, delay) in enumerate(
                    sorted(net.sink_delays.items()), start=1):
                lines.append(f"{index} {sink} {delay:.6g}")
        lines.append("*END")
        lines.append("")
    return "\n".join(lines)


def parse_spef(text: str) -> dict[str, NetParasitics]:
    """Parse SPEF text produced by :func:`write_spef`."""
    parasitics: dict[str, NetParasitics] = {}
    current: NetParasitics | None = None
    section = None
    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("//"):
            continue
        if line.startswith("*D_NET"):
            parts = line.split()
            if len(parts) != 3:
                raise ParseError(f"malformed *D_NET line: {line!r}",
                                 line=line_no)
            current = NetParasitics(
                net_name=parts[1], total_cap_pf=float(parts[2]),
                total_res_kohm=0.0, length_um=0.0)
            section = None
            continue
        if line.startswith("*END"):
            if current is not None:
                parasitics[current.net_name] = current
            current = None
            section = None
            continue
        if line.startswith("*PARAM"):
            section = "param"
            continue
        if line.startswith("*DELAY"):
            section = "delay"
            continue
        if line.startswith("*LEN") and current is not None:
            current.length_um = float(line.split()[1])
            continue
        if line.startswith("*RTOT") and current is not None:
            current.total_res_kohm = float(line.split()[1])
            continue
        if line.startswith("*"):
            continue  # header / ignored sections
        if current is not None and section == "delay":
            parts = line.split()
            if len(parts) != 3:
                raise ParseError(f"malformed delay entry: {line!r}",
                                 line=line_no)
            current.sink_delays[parts[1]] = float(parts[2])
    return parasitics
