"""Routing estimation and parasitic extraction.

* :mod:`repro.routing.steiner` — rectilinear spanning trees over pin
  locations (post-route topology).
* :mod:`repro.routing.elmore` — Elmore delay on RC trees.
* :mod:`repro.routing.extract` — pre-route (bounding-box estimate with
  deliberate, deterministic error) and post-route (tree-accurate)
  extraction producing :class:`NetParasitics`.
* :mod:`repro.routing.spef` — SPEF-subset writer/reader.

The pre/post split mirrors the paper's flow: the switch transistor
structure is first built from *estimated* RC, then re-optimized after
routing "based on post-route information (SPEF)".
"""

from repro.routing.elmore import RcTree
from repro.routing.extract import (
    NetParasitics,
    PostRouteExtractor,
    PreRouteEstimator,
)
from repro.routing.spef import parse_spef, write_spef
from repro.routing.steiner import SteinerTree, build_mst

__all__ = [
    "RcTree",
    "NetParasitics",
    "PostRouteExtractor",
    "PreRouteEstimator",
    "parse_spef",
    "write_spef",
    "SteinerTree",
    "build_mst",
]
