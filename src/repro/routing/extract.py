"""Parasitic extraction: pre-route estimates and post-route trees.

Both extractors produce ``{net name: NetParasitics}``; STA consumes
them through :class:`~repro.timing.delay.NetModel`.

**Pre-route** (:class:`PreRouteEstimator`): net length is the placement
bounding-box half-perimeter times a routing detour factor times a
*deterministic pseudo-random error factor* derived from the net name.
This models the estimation error the paper calls out ("there is an
error when compared with the precise RC information which is generated
after routing") — and makes the post-SPEF switch re-optimization step
do real work.

**Post-route** (:class:`PostRouteExtractor`): a rectilinear spanning
tree over the net's pins is "routed"; wire R/C distribute along tree
edges and per-sink delays come from Elmore analysis.
"""

from __future__ import annotations

import dataclasses
import hashlib

from repro.device.process import Technology
from repro.liberty.library import Library
from repro.netlist.core import Net, Netlist
from repro.placement.metrics import net_bbox
from repro.placement.placer import Placement
from repro.routing.elmore import RcTree
from repro.routing.steiner import SteinerTree, build_mst


@dataclasses.dataclass
class NetParasitics:
    """Extracted parasitics of one net."""

    net_name: str
    total_cap_pf: float
    total_res_kohm: float
    length_um: float
    sink_delays: dict[str, float] = dataclasses.field(default_factory=dict)

    def sink_delay(self, sink_name: str) -> float:
        """Wire delay (ns) to a sink pin (``inst/pin`` or ``__port__/p``)."""
        return self.sink_delays.get(sink_name, 0.0)

    def worst_sink_delay(self) -> float:
        return max(self.sink_delays.values(), default=0.0)


def _name_error_factor(net_name: str, spread: float = 0.2) -> float:
    """Deterministic per-net estimation error in [1-spread, 1+spread]."""
    digest = hashlib.sha256(net_name.encode("utf-8")).digest()
    fraction = digest[0] / 255.0
    return 1.0 - spread + 2.0 * spread * fraction


def _pin_cap(library: Library, pin) -> float:
    cell = library.cells.get(pin.instance.cell_name)
    if cell is None:
        return 0.0
    lib_pin = cell.pins.get(pin.name)
    return lib_pin.capacitance if lib_pin is not None else 0.0


class PreRouteEstimator:
    """Bounding-box wire estimates with controlled error."""

    #: Router detour over the HPWL lower bound.
    DETOUR = 1.15

    def __init__(self, netlist: Netlist, placement: Placement,
                 library: Library, tech: Technology | None = None,
                 error_spread: float = 0.1):
        self.netlist = netlist
        self.placement = placement
        self.library = library
        self.tech = tech or library.tech
        self.error_spread = error_spread

    def extract(self) -> dict[str, NetParasitics]:
        result: dict[str, NetParasitics] = {}
        for net in self.netlist.nets.values():
            parasitic = self._extract_net(net)
            if parasitic is not None:
                result[net.name] = parasitic
        return result

    @staticmethod
    def _fanout_factor(pin_count: int) -> float:
        """Steiner-length over HPWL correction for multi-pin nets.

        A k-pin net's tree length grows roughly with sqrt(k) relative
        to its bounding box half-perimeter; 2-3 pin nets equal HPWL.
        """
        if pin_count <= 3:
            return 1.0
        return max(1.0, 0.53 * pin_count ** 0.5)

    def _extract_net(self, net: Net) -> NetParasitics | None:
        bbox = net_bbox(net, self.placement)
        if bbox is None:
            return None
        x0, y0, x1, y1 = bbox
        hpwl = (x1 - x0) + (y1 - y0)
        pin_count = net.fanout() + 1
        length = hpwl * self.DETOUR * self._fanout_factor(pin_count) \
            * _name_error_factor(net.name, self.error_spread)
        res = length * self.tech.wire_res_per_um
        cap = length * self.tech.wire_cap_per_um
        # Star approximation: every sink sees half the wire RC plus its
        # own pin load through the full resistance.
        sink_delays: dict[str, float] = {}
        for pin in net.sinks:
            pin_cap = _pin_cap(self.library, pin)
            sink_delays[pin.full_name] = 0.69 * res * (0.5 * cap + pin_cap)
        for port in net.sink_ports:
            sink_delays[f"__port__/{port.name}"] = 0.69 * res * 0.5 * cap
        return NetParasitics(net.name, cap, res, length, sink_delays)


class PostRouteExtractor:
    """Tree-accurate extraction after 'routing' (MST topology)."""

    def __init__(self, netlist: Netlist, placement: Placement,
                 library: Library, tech: Technology | None = None):
        self.netlist = netlist
        self.placement = placement
        self.library = library
        self.tech = tech or library.tech

    def extract(self) -> dict[str, NetParasitics]:
        result: dict[str, NetParasitics] = {}
        for net in self.netlist.nets.values():
            parasitic = self._extract_net(net)
            if parasitic is not None:
                result[net.name] = parasitic
        return result

    def route_net(self, net: Net) -> SteinerTree | None:
        """The spanning-tree 'route' of one net (driver-rooted)."""
        names: list[str] = []
        points: list[tuple[float, float]] = []
        if net.driver is not None:
            names.append(net.driver.full_name)
            points.append(self.placement.location(net.driver.instance.name))
        elif net.driver_port is not None:
            names.append(f"__port__/{net.driver_port.name}")
            points.append(self.placement.port_locations[net.driver_port.name])
        else:
            return None
        for pin in net.sinks:
            names.append(pin.full_name)
            points.append(self.placement.location(pin.instance.name))
        for pin in net.keepers:
            names.append(pin.full_name)
            points.append(self.placement.location(pin.instance.name))
        for port in net.sink_ports:
            names.append(f"__port__/{port.name}")
            points.append(self.placement.port_locations[port.name])
        if len(names) < 2:
            return None
        return build_mst(names, points, root_index=0)

    def _extract_net(self, net: Net) -> NetParasitics | None:
        tree = self.route_net(net)
        if tree is None:
            return None
        rc = self.rc_tree_for(net, tree)
        delays = rc.elmore_delays()
        sink_names = {pin.full_name for pin in net.sinks}
        sink_names.update(f"__port__/{p.name}" for p in net.sink_ports)
        sink_delays = {name: delays[name] for name in sink_names
                       if name in delays}
        total_res = sum(length * self.tech.wire_res_per_um
                        for length in tree.edge_lengths())
        wire_cap = tree.total_length * self.tech.wire_cap_per_um
        return NetParasitics(net.name, wire_cap, total_res,
                             tree.total_length, sink_delays)

    def rc_tree_for(self, net: Net, tree: SteinerTree) -> RcTree:
        """Build the RC tree for a routed net (wire RC + sink pin caps)."""
        rc = RcTree(tree.names[0])
        res_per_um = self.tech.wire_res_per_um
        cap_per_um = self.tech.wire_cap_per_um
        # Edges in MST construction order are always parent-before-child.
        half_caps: dict[str, float] = {tree.names[0]: 0.0}
        for (a, b) in tree.edges:
            length = (abs(tree.points[a][0] - tree.points[b][0])
                      + abs(tree.points[a][1] - tree.points[b][1]))
            res = max(length * res_per_um, 1e-9)
            cap = length * cap_per_um
            rc.add_node(tree.names[b], cap / 2.0, tree.names[a], res)
            half_caps[tree.names[b]] = 0.0
            # The other half of the edge cap loads the parent node.
            rc.add_cap(tree.names[a], cap / 2.0)
        # Pin loads on sinks.
        for pin in net.sinks:
            if pin.full_name in rc.caps:
                rc.add_cap(pin.full_name, _pin_cap(self.library, pin))
        for pin in net.keepers:
            if pin.full_name in rc.caps:
                rc.add_cap(pin.full_name, _pin_cap(self.library, pin))
        return rc
