"""CI smoke test for the job-service mode.

Starts a real ``repro-smt serve`` subprocess, drives it over HTTP with
the stdlib :class:`repro.api.ServiceClient`, and asserts the results
match the frozen golden fixtures in ``tests/golden/``:

1. a c432 flow job (``optimize``, improved SMT, the golden Table 1
   config) — area / leakage / structure counts must match the golden
   row to 1e-9 relative;
2. a full three-technique ``sweep`` job on c432 — every golden row;
3. a 3-corner ``signoff`` job — the ``tt_nom`` corner must reproduce
   the nominal (golden) leakage bit-for-bit, and the warm flow cache
   must have been hit (the signoff reuses the optimize job's flow);
4. a 3-corner ``standby`` job — the scheduler must respect its rush
   budget, beat the serial daisy-chain, and reuse the corner-library
   cache the signoff populated;
5. a **restart**: the first server is torn down and a second
   ``repro-smt serve`` process re-runs the signoff against the same
   ``REPRO_LOWER_CACHE`` directory — on the numpy backend its health
   stats must show a lowering-cache *hit* (the lowered design survived
   the process boundary); on the scalar backend the cache must stay
   silent.

Run from the repo root (CI runs it once per compute backend)::

    PYTHONPATH=src python scripts/service_smoke.py
"""

from __future__ import annotations

import json
import os
import pathlib
import socket
import subprocess
import sys
import tempfile
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.api import ServiceClient  # noqa: E402
from repro.api.requests import (  # noqa: E402
    OptimizeRequest,
    PolicyRequest,
    SignoffRequest,
    StandbyRequest,
    SweepRequest,
)
from repro.config import Technique  # noqa: E402
from repro.errors import ServiceError  # noqa: E402
from repro.obs import configure_logging, get_logger  # noqa: E402

logger = get_logger("scripts.service_smoke")

#: The golden Table 1 knobs (tests/golden + scripts/make_golden.py).
CIRCUIT = "c432"
CONFIG = {"timing_margin": 0.12, "placement_seed": 1}
CORNERS = ("tt_nom", "ff_1.32v_125c", "ss_1.08v_125c")
REL_TOL = 1e-9


def close_enough(a: float, b: float) -> bool:
    return abs(a - b) <= REL_TOL * max(abs(a), abs(b), 1e-30)


def check(label: str, ok: bool):
    logger.info("  [%s] %s", "ok" if ok else "FAIL", label)
    if not ok:
        raise SystemExit(f"service smoke failed: {label}")


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def wait_for_health(client: ServiceClient, deadline_s: float = 60.0):
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        try:
            if client.health()["status"] == "ok":
                return
        except (ServiceError, OSError):
            pass
        time.sleep(0.2)
    raise SystemExit("service never became healthy")


def start_server(port: int, cache_dir: str, store_dir: str,
                 *extra_args: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["REPRO_LOWER_CACHE"] = cache_dir
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--port", str(port), "--result-store", store_dir,
         *extra_args],
        cwd=REPO, env=env,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT)


def stop_server(server: subprocess.Popen):
    server.terminate()
    try:
        server.wait(timeout=10)
    except subprocess.TimeoutExpired:
        server.kill()


def main() -> int:
    golden = json.loads(
        (REPO / "tests" / "golden" / "table1_c432_s298.json")
        .read_text(encoding="utf-8"))[CIRCUIT]
    cache_dir = tempfile.mkdtemp(prefix="repro-lower-cache-")
    store_dir = tempfile.mkdtemp(prefix="repro-result-store-")
    port = free_port()
    server = start_server(port, cache_dir, store_dir)
    client = ServiceClient(f"http://127.0.0.1:{port}", timeout=60.0)
    try:
        wait_for_health(client)
        logger.info("service healthy on port %s", port)

        logger.info("flow job: optimize improved_smt on c432")
        improved = golden["improved_smt"]
        result = client.run(
            "optimize", CIRCUIT,
            request=OptimizeRequest(technique=Technique.IMPROVED_SMT),
            config=CONFIG)
        check("area matches golden",
              close_enough(result.area_um2, improved["area_um2"]))
        check("leakage matches golden",
              close_enough(result.leakage_nw, improved["leakage_nw"]))
        check("structure counts match golden",
              (result.mt_cells, result.switches, result.holders)
              == (improved["mt_cells"], improved["switches"],
                  improved["holders"]))

        logger.info("sweep job: all three techniques on c432")
        sweep = client.run("sweep", CIRCUIT, request=SweepRequest(),
                           config=CONFIG)
        for row in sweep.rows:
            expected = golden[row.technique.value]
            for field in ("area_um2", "leakage_nw", "area_pct",
                          "leakage_pct"):
                check(f"sweep {row.technique.value} {field}",
                      close_enough(getattr(row, field), expected[field]))

        logger.info("signoff job: %d corners on c432", len(CORNERS))
        signoff = client.run(
            "signoff", CIRCUIT,
            request=SignoffRequest(technique=Technique.IMPROVED_SMT,
                                   corners=CORNERS),
            config=CONFIG)
        check("all corners signed off",
              tuple(row.corner for row in signoff.rows) == CORNERS)
        check("tt_nom reproduces the golden nominal leakage exactly",
              signoff.row("tt_nom").leakage_nw == result.leakage_nw)
        check("nominal leakage matches golden",
              close_enough(signoff.nominal_leakage_nw,
                           improved["leakage_nw"]))

        logger.info("standby job: wake/rush/break-even at %d "
                    "corners on c432", len(CORNERS))
        standby = client.run(
            "standby", CIRCUIT,
            request=StandbyRequest(scenarios=("mostly_idle",
                                              "always_on"),
                                   corners=CORNERS),
            config=CONFIG)
        check("standby evaluated every corner",
              standby.corners == CORNERS)
        check("scheduler respected the rush budget",
              standby.schedule.peak_aggregate_ma
              <= standby.schedule.budget_ma * (1.0 + 1e-9))
        check("staged wake-up no slower than the serial daisy-chain",
              standby.schedule.total_latency_ns
              <= standby.schedule.serial_latency_ns + 1e-9)
        check("deep idle pays, back-to-back bursts do not",
              standby.outcome("mostly_idle", "tt_nom").worthwhile
              and not standby.outcome("always_on", "tt_nom").worthwhile)

        logger.info("policy job: %d-candidate sleep-policy sweep at "
                    "%d corners on c432", 256, len(CORNERS))
        policy = client.run(
            "policy", CIRCUIT,
            request=PolicyRequest(scenarios=("mostly_idle", "bursty"),
                                  corners=CORNERS, candidates=256),
            config=CONFIG)
        check("policy swept at least the requested candidates",
              policy.candidates >= 256)
        check("policy evaluated every corner",
              policy.corners == CORNERS)
        check("policy front is non-empty and oracle-bounded",
              len(policy.pareto) >= 1
              and all(point.net_savings_pj
                      <= policy.oracle_net_savings_pj + 1e-9
                      for point in policy.pareto))

        stats = client.health()["cache_stats"]
        check("signoff hit the warm flow cache",
              stats.get("flow", {}).get("hits", 0) >= 1)
        check("standby and policy reused the cached corner "
              "libraries",
              stats.get("corner_library", {}).get("hits", 0)
              >= 2 * len(CORNERS))
        check("every finished job was persisted to the result store",
              stats.get("result_store", {}).get("stores", 0) >= 5)
        check("result store writes were clean (no errors)",
              stats.get("result_store", {}).get("errors", 0) == 0)
        logger.info("cache stats: %s", json.dumps(stats, sort_keys=True))

        health = client.health()
        check("health reports queue depth",
              health.get("queue_depth") == 0)
        check("health counts jobs by kind",
              health.get("jobs_by_kind", {}).get("optimize", 0) >= 1)

        metrics = client.metrics()
        check("metrics snapshot is schema-stamped",
              metrics.get("schema") == "metrics_snapshot")
        check("metrics counted every finished job kind",
              all(metrics["counters"].get(f"service.jobs.{kind}", 0) >= 1
                  for kind in ("optimize", "sweep", "signoff",
                               "standby", "policy")))
        check("metrics queue gauge drained back to zero",
              metrics["gauges"].get("service.queue_depth") == 0)
        check("job latency histogram saw every job",
              metrics["histograms"].get("service.job_latency_s",
                                        {}).get("count", 0) >= 5)
        caches = metrics.get("caches", {})
        check("metrics unify the workspace cache tree",
              caches.get("workspace", {}).get("flow", {})
              .get("hits", 0) >= 1)
        check("metrics include the corner-memo source",
              "corner_memo" in caches)
        logger.info("metrics counters: %s",
                    json.dumps(metrics["counters"], sort_keys=True))

        # Restart: a SECOND serve process against the same lowering
        # cache AND the same result store.  The identical signoff must
        # come straight off the result store (no recompute); a signoff
        # the store has NOT seen must still execute — and on the numpy
        # backend pick the lowered design up from disk (a
        # lowering-cache hit with zero stores); the scalar backend
        # never lowers, so its counters must stay flat.
        from repro.compute import resolve_backend

        backend = resolve_backend(None)
        logger.info("restart: second serve process, shared lowering "
                    "cache + result store (%s backend)", backend)
        stop_server(server)
        port = free_port()
        server = start_server(port, cache_dir, store_dir)
        client = ServiceClient(f"http://127.0.0.1:{port}", timeout=60.0)
        wait_for_health(client)
        again = client.run(
            "signoff", CIRCUIT,
            request=SignoffRequest(technique=Technique.IMPROVED_SMT,
                                   corners=CORNERS),
            config=CONFIG)
        check("restarted signoff reproduces tt_nom exactly",
              again.row("tt_nom").leakage_nw
              == signoff.row("tt_nom").leakage_nw)
        check("restarted signoff matches the first process bit-for-bit",
              tuple((row.corner, row.leakage_nw) for row in again.rows)
              == tuple((row.corner, row.leakage_nw)
                       for row in signoff.rows))
        store_stats = client.health()["cache_stats"] \
            .get("result_store", {})
        check("second process served the signoff from the result store",
              store_stats.get("hits", 0) >= 1)
        check("result store load was clean (no errors)",
              store_stats.get("errors", 0) == 0)
        logger.info("restart result-store stats: %s",
                    json.dumps(store_stats, sort_keys=True))

        # A request the store has never seen (same config, fewer
        # corners) must actually execute — this is what drives the
        # lowering cache below.
        nominal_only = client.run(
            "signoff", CIRCUIT,
            request=SignoffRequest(technique=Technique.IMPROVED_SMT,
                                   corners=("tt_nom",)),
            config=CONFIG)
        check("store-missed signoff still reproduces tt_nom exactly",
              nominal_only.row("tt_nom").leakage_nw
              == signoff.row("tt_nom").leakage_nw)
        lowering = client.health()["cache_stats"].get("lowering", {})
        if backend == "numpy":
            check("second process hit the persistent lowering cache",
                  lowering.get("hits", 0) >= 1)
            check("lowering cache load was clean (no errors)",
                  lowering.get("errors", 0) == 0)
        else:
            check("scalar backend leaves the lowering cache untouched",
                  lowering.get("hits", 0) == 0
                  and lowering.get("stores", 0) == 0)
        logger.info("restart lowering stats: %s",
                    json.dumps(lowering, sort_keys=True))

        # Shard leg: a THIRD serve process with --shards 2 and a fresh
        # result store, so the optimize actually executes in a shard
        # worker process — cross-process determinism against golden.
        logger.info("shard leg: serve --shards 2, fresh result store")
        stop_server(server)
        port = free_port()
        shard_store = tempfile.mkdtemp(prefix="repro-result-store-")
        server = start_server(port, cache_dir, shard_store,
                              "--shards", "2")
        client = ServiceClient(f"http://127.0.0.1:{port}", timeout=120.0)
        wait_for_health(client)
        sharded = client.run(
            "optimize", CIRCUIT,
            request=OptimizeRequest(technique=Technique.IMPROVED_SMT),
            config=CONFIG, timeout=300.0)
        check("sharded optimize matches golden area",
              close_enough(sharded.area_um2, improved["area_um2"]))
        check("sharded optimize matches golden leakage",
              close_enough(sharded.leakage_nw, improved["leakage_nw"]))
        check("sharded optimize matches the in-process result exactly",
              sharded.leakage_nw == result.leakage_nw
              and sharded.area_um2 == result.area_um2)
        check("shard leg executed (fresh store, so no hit)",
              client.health()["cache_stats"]
              .get("result_store", {}).get("hits", 0) == 0)
        logger.info("service smoke: all checks passed")
        return 0
    finally:
        stop_server(server)


if __name__ == "__main__":
    # Route through the repro logger; $REPRO_LOG_LEVEL overrides INFO.
    if not configure_logging():
        configure_logging("INFO", stream=sys.stdout)
    raise SystemExit(main())
