"""Regenerate the golden regression fixtures in tests/golden/.

Run from the repo root::

    PYTHONPATH=src python scripts/make_golden.py

The fixtures freeze the paper-facing numbers (a Table 1 comparison for
c432 and s298, and a Monte-Carlo percentile set for c432) as produced
by the **python** reference backend.  The regression test asserts both
compute backends keep reproducing them, so kernel changes cannot
silently drift the reproduction.
"""

from __future__ import annotations

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                       / "src"))

from repro.api import Workspace
from repro.api.studies import technique_comparison
from repro.benchcircuits.suite import load_circuit
from repro.config import FlowConfig
from repro.liberty.library import VARIANT_LVT
from repro.liberty.synth import build_default_library
from repro.netlist.techmap import technology_map
from repro.timing.constraints import Constraints
from repro.variation.montecarlo import McConfig, MonteCarloEngine, summarize

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent.parent \
    / "tests" / "golden"

#: Pinned knobs — mirrored by tests/golden/test_golden_regression.py.
TABLE1_CIRCUITS = ("c432", "s298")
TABLE1_CONFIG = dict(timing_margin=0.12, placement_seed=1)
MC_CIRCUIT = "c432"
MC_CLOCK_PERIOD_NS = 1.8
MC_CONFIG = dict(samples=48, seed=7, sigma_global_v=0.03,
                 sigma_local_v=0.015, timing=True)


def table1_payload(library) -> dict:
    payload = {}
    workspace = Workspace(library=library)
    for circuit in TABLE1_CIRCUITS:
        comparison = technique_comparison(
            workspace.netlist(circuit), library,
            FlowConfig(compute_backend="python", **TABLE1_CONFIG),
            circuit_name=circuit, workspace=workspace)
        payload[circuit] = {
            row.technique.value: {
                "area_um2": row.area_um2,
                "leakage_nw": row.leakage_nw,
                "area_pct": row.area_pct,
                "leakage_pct": row.leakage_pct,
                "mt_cells": row.mt_cells,
                "switches": row.switches,
                "holders": row.holders,
            }
            for row in comparison.rows
        }
    return payload


def mc_payload(library) -> dict:
    netlist = load_circuit(MC_CIRCUIT)
    technology_map(netlist, library, VARIANT_LVT)
    engine = MonteCarloEngine(
        netlist, library, McConfig(**MC_CONFIG),
        constraints=Constraints(clock_period=MC_CLOCK_PERIOD_NS),
        compute_backend="python")
    stats = summarize(engine.run(),
                      leakage_budget_nw=2.0 * engine.nominal_leakage_nw)
    return {
        "circuit": MC_CIRCUIT,
        "clock_period_ns": MC_CLOCK_PERIOD_NS,
        "mc_config": MC_CONFIG,
        "nominal_leakage_nw": engine.nominal_leakage_nw,
        "nominal_wns": engine.nominal_wns,
        "statistics": stats.as_dict(),
    }


def main() -> int:
    library = build_default_library()
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    table1 = GOLDEN_DIR / "table1_c432_s298.json"
    table1.write_text(json.dumps(table1_payload(library), indent=2,
                                 sort_keys=True) + "\n", encoding="utf-8")
    print(f"wrote {table1}")
    montecarlo = GOLDEN_DIR / "mc_percentiles_c432.json"
    montecarlo.write_text(json.dumps(mc_payload(library), indent=2,
                                     sort_keys=True) + "\n",
                          encoding="utf-8")
    print(f"wrote {montecarlo}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
