"""Scratch calibration script: scan timing margins and report the
LVT/MT fractions each produces (used to pick Table 1 experiment
margins; not part of the library)."""

import sys

import repro
from repro.core.dual_vth import DualVthAssigner
from repro.liberty.library import VARIANT_HVT, VARIANT_LVT, VARIANT_MT
from repro.netlist.techmap import technology_map
from repro.placement.legalize import legalize
from repro.placement.placer import GlobalPlacer
from repro.routing.extract import PreRouteEstimator
from repro.timing.constraints import Constraints
from repro.timing.sta import TimingAnalyzer


def scan(circuit_name, margins, fast_variant):
    lib = repro.build_default_library()
    base = repro.load_circuit(circuit_name)
    for margin in margins:
        nl = base.clone()
        technology_map(nl, lib, VARIANT_LVT)
        placement = GlobalPlacer(nl, lib).run()
        legalize(placement, nl, lib)
        pre = PreRouteEstimator(nl, placement, lib).extract()
        probe = Constraints(clock_period=1000.0)
        rep = TimingAnalyzer(nl, lib, probe, parasitics=pre).run()
        min_period = 1000.0 - rep.wns
        period = min_period * (1 + margin) * 0.98
        cons = Constraints(clock_period=period)
        assigner = DualVthAssigner(nl, lib, cons, parasitics=pre,
                                   fast_variant=fast_variant,
                                   slow_variant=VARIANT_HVT, rounds=4)
        try:
            res = assigner.run()
        except Exception as exc:
            print(f"{circuit_name} margin={margin} fast={fast_variant}: "
                  f"INFEASIBLE ({exc})")
            continue
        total = res.fast_count + res.slow_count
        print(f"{circuit_name} margin={margin} fast={fast_variant}: "
              f"fast={res.fast_count}/{total} "
              f"({100 * res.fast_fraction:.1f}%) wns={res.final_report.wns:+.4f}")


if __name__ == "__main__":
    circuit = sys.argv[1] if len(sys.argv) > 1 else "circuitA"
    margins = [float(m) for m in sys.argv[2].split(",")] \
        if len(sys.argv) > 2 else [0.08, 0.10, 0.12, 0.15]
    variant = sys.argv[3] if len(sys.argv) > 3 else VARIANT_LVT
    scan(circuit, margins, variant)
