"""Scratch calibration script: scan timing margins and report the
fast/slow fractions each produces (used to pick Table 1 experiment
margins; not part of the library).

Runs through the :mod:`repro.api` Workspace facade, so the library,
netlist and every per-(margin, technique) flow result are compiled
once and cached — rerunning a margin is free.

Usage::

    PYTHONPATH=src python scripts/scan_margins.py \
        [circuit] [margin,margin,...] [technique]
"""

import sys

from repro.api import Workspace
from repro.config import FlowConfig, Technique
from repro.errors import ReproError
from repro.obs import configure_logging, get_logger

#: Legacy aliases from the pre-facade script (fast-variant names).
TECHNIQUE_ALIASES = {
    "LVT": Technique.DUAL_VTH,
    "MT": Technique.IMPROVED_SMT,
    "CMT": Technique.CONVENTIONAL_SMT,
}

logger = get_logger("scripts.scan_margins")


def scan(circuit_name, margins, technique):
    workspace = Workspace()
    for margin in margins:
        # assignment_guardband mirrors the 2 % period tightening the
        # pre-facade script applied by hand.
        config = FlowConfig(timing_margin=margin,
                            assignment_guardband=0.02)
        design = workspace.design(circuit_name, config)
        try:
            result = design.flow_result(technique)
        except ReproError as exc:
            logger.warning("%s margin=%s technique=%s: INFEASIBLE (%s)",
                           circuit_name, margin, technique.value, exc)
            continue
        assignment = result.assignment
        total = assignment.fast_count + assignment.slow_count
        logger.info(
            "%s margin=%s technique=%s: fast=%d/%d (%.1f%%) wns=%+.4f",
            circuit_name, margin, technique.value,
            assignment.fast_count, total,
            100 * assignment.fast_fraction, result.timing.wns)


def parse_technique(text: str) -> Technique:
    if text in TECHNIQUE_ALIASES:
        return TECHNIQUE_ALIASES[text]
    return Technique(text)


if __name__ == "__main__":
    # Route through the repro logger; $REPRO_LOG_LEVEL overrides INFO.
    if not configure_logging():
        configure_logging("INFO", stream=sys.stdout)
    circuit = sys.argv[1] if len(sys.argv) > 1 else "circuitA"
    margins = [float(m) for m in sys.argv[2].split(",")] \
        if len(sys.argv) > 2 else [0.08, 0.10, 0.12, 0.15]
    technique = parse_technique(sys.argv[3]) if len(sys.argv) > 3 \
        else Technique.DUAL_VTH
    scan(circuit, margins, technique)
